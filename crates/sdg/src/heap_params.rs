//! Context-sensitive SDG construction with heap parameters.
//!
//! Implements the paper's §5.3 representation: "heap reads and writes
//! modeled as extra parameters and return values to each procedure", with
//! parameter sets discovered by the interprocedural mod-ref analysis, using
//! the same heap partitions as the points-to analysis. The number of nodes
//! this introduces is the scalability bottleneck the paper reports ("the
//! number of SDG statements introduced to model heap parameter-passing
//! quickly explodes").
//!
//! Within one method instance, a partition's state is aggregated in a
//! [`NodeKind::MethodHeap`] node fed by the instance's stores of the
//! partition, its heap formal-in, and the actual-outs of calls that may
//! modify the partition. Loads, call actual-ins and the heap formal-out all
//! read from the aggregator.

use crate::builder::build_skeleton;
use crate::node::{Edge, EdgeKind, NodeKind};
use crate::Sdg;
use thinslice_ir::{InstrKind, Program, StmtRef};
use thinslice_pta::{ModRef, Partition, Pta};
use thinslice_util::RunCtx;

/// Builds the context-sensitive SDG (heap-parameter mode).
pub fn build_cs(program: &Program, pta: &Pta, modref: &ModRef) -> Sdg {
    let mut sdg = build_skeleton(program, pta);
    add_heap_parameter_edges(&mut sdg, program, pta, modref);
    sdg
}

/// Like [`build_cs`], but under a [`RunCtx`]: construction is recorded as a
/// `sdg.build_cs` span with node/edge counters. With a disabled context
/// this is exactly [`build_cs`].
pub fn build_cs_ctx(program: &Program, pta: &Pta, modref: &ModRef, ctx: &RunCtx) -> Sdg {
    let mut span = ctx.telemetry().span("sdg.build_cs");
    let sdg = build_cs(program, pta, modref);
    span.add("sdg.nodes", sdg.node_count() as u64);
    span.add("sdg.edges", sdg.edge_count() as u64);
    sdg
}

/// Like [`build_cs_ctx`], but serving per-method skeleton artifacts from
/// (and retaining new ones into) `cache` — the incremental rebuild entry
/// point, bit-identical to a cold build for the same inputs.
pub fn build_cs_cached(
    program: &Program,
    pta: &Pta,
    modref: &ModRef,
    ctx: &RunCtx,
    cache: &mut crate::cache::SdgCache,
) -> Sdg {
    let mut span = ctx.telemetry().span("sdg.build_cs");
    let mut sdg = crate::builder::build_skeleton_cached(program, pta, cache);
    add_heap_parameter_edges(&mut sdg, program, pta, modref);
    span.add("sdg.nodes", sdg.node_count() as u64);
    span.add("sdg.edges", sdg.edge_count() as u64);
    sdg
}

fn add_heap_parameter_edges(sdg: &mut Sdg, program: &Program, pta: &Pta, modref: &ModRef) {
    let instances: Vec<(thinslice_pta::CgNode, thinslice_ir::MethodId)> = pta
        .callgraph
        .iter_nodes()
        .filter(|(_, m, _)| program.methods[*m].body.is_some())
        .map(|(n, m, _)| (n, m))
        .collect();

    // Heap formals per instance, and the method-heap aggregation.
    for &(inst, m) in &instances {
        for p in modref.refs(m).iter() {
            // Values may enter through the caller.
            let mh = sdg.intern(NodeKind::MethodHeap(inst, p));
            let fin = sdg.intern(NodeKind::FormalIn(inst, p));
            sdg.add_edge(
                mh,
                Edge {
                    target: fin,
                    kind: EdgeKind::Flow {
                        excluded_from_thin: false,
                    },
                },
            );
        }
        for p in modref.mods(m).iter() {
            // Values may leave through the formal-out.
            let mh = sdg.intern(NodeKind::MethodHeap(inst, p));
            let fout = sdg.intern(NodeKind::FormalOut(inst, p));
            sdg.add_edge(
                fout,
                Edge {
                    target: mh,
                    kind: EdgeKind::Flow {
                        excluded_from_thin: false,
                    },
                },
            );
        }
    }

    // Per-statement wiring.
    for &(inst, m) in &instances {
        let body = program.methods[m].body.as_ref().expect("body");
        for (loc, instr) in body.instrs() {
            let sr = StmtRef { method: m, loc };
            match &instr.kind {
                InstrKind::Load { base, field, .. } => {
                    let node = sdg.intern(NodeKind::Stmt(inst, sr));
                    for o in pta.instance_points_to(inst, *base).iter() {
                        if let Some(p) = modref.partition_id(Partition::ObjField(o, *field)) {
                            let mh = sdg.intern(NodeKind::MethodHeap(inst, p));
                            sdg.add_edge(
                                node,
                                Edge {
                                    target: mh,
                                    kind: EdgeKind::Flow {
                                        excluded_from_thin: false,
                                    },
                                },
                            );
                        }
                    }
                }
                InstrKind::Store { base, field, .. } => {
                    let node = sdg.intern(NodeKind::Stmt(inst, sr));
                    for o in pta.instance_points_to(inst, *base).iter() {
                        if let Some(p) = modref.partition_id(Partition::ObjField(o, *field)) {
                            let mh = sdg.intern(NodeKind::MethodHeap(inst, p));
                            sdg.add_edge(
                                mh,
                                Edge {
                                    target: node,
                                    kind: EdgeKind::Flow {
                                        excluded_from_thin: false,
                                    },
                                },
                            );
                        }
                    }
                }
                InstrKind::ArrayLoad { base, .. } => {
                    let node = sdg.intern(NodeKind::Stmt(inst, sr));
                    for o in pta.instance_points_to(inst, *base).iter() {
                        if let Some(p) = modref.partition_id(Partition::ArrayElem(o)) {
                            let mh = sdg.intern(NodeKind::MethodHeap(inst, p));
                            sdg.add_edge(
                                node,
                                Edge {
                                    target: mh,
                                    kind: EdgeKind::Flow {
                                        excluded_from_thin: false,
                                    },
                                },
                            );
                        }
                    }
                }
                InstrKind::ArrayStore { base, .. } => {
                    let node = sdg.intern(NodeKind::Stmt(inst, sr));
                    for o in pta.instance_points_to(inst, *base).iter() {
                        if let Some(p) = modref.partition_id(Partition::ArrayElem(o)) {
                            let mh = sdg.intern(NodeKind::MethodHeap(inst, p));
                            sdg.add_edge(
                                mh,
                                Edge {
                                    target: node,
                                    kind: EdgeKind::Flow {
                                        excluded_from_thin: false,
                                    },
                                },
                            );
                        }
                    }
                }
                InstrKind::StaticLoad { field, .. } => {
                    let node = sdg.intern(NodeKind::Stmt(inst, sr));
                    if let Some(p) = modref.partition_id(Partition::Static(*field)) {
                        let mh = sdg.intern(NodeKind::MethodHeap(inst, p));
                        sdg.add_edge(
                            node,
                            Edge {
                                target: mh,
                                kind: EdgeKind::Flow {
                                    excluded_from_thin: false,
                                },
                            },
                        );
                    }
                }
                InstrKind::StaticStore { field, .. } => {
                    let node = sdg.intern(NodeKind::Stmt(inst, sr));
                    if let Some(p) = modref.partition_id(Partition::Static(*field)) {
                        let mh = sdg.intern(NodeKind::MethodHeap(inst, p));
                        sdg.add_edge(
                            mh,
                            Edge {
                                target: node,
                                kind: EdgeKind::Flow {
                                    excluded_from_thin: false,
                                },
                            },
                        );
                    }
                }
                InstrKind::Call { .. } => {
                    // Heap actual-in/out per callee-instance partition.
                    let site = sdg.intern(NodeKind::Stmt(inst, sr));
                    for &t_inst in pta.callgraph.targets(inst, loc) {
                        let (t, _) = pta.callgraph.node(t_inst);
                        if program.methods[t].is_native {
                            continue;
                        }
                        for p in modref.refs(t).iter() {
                            let ain = sdg.intern(NodeKind::ActualIn(site, p));
                            let fin = sdg.intern(NodeKind::FormalIn(t_inst, p));
                            let mh_caller = sdg.intern(NodeKind::MethodHeap(inst, p));
                            // Callee's formal-in comes from the call-site
                            // actual-in, which reads the caller's state.
                            sdg.add_edge(
                                fin,
                                Edge {
                                    target: ain,
                                    kind: EdgeKind::ParamIn { site },
                                },
                            );
                            sdg.add_edge(
                                ain,
                                Edge {
                                    target: mh_caller,
                                    kind: EdgeKind::Flow {
                                        excluded_from_thin: false,
                                    },
                                },
                            );
                        }
                        for p in modref.mods(t).iter() {
                            let aout = sdg.intern(NodeKind::ActualOut(site, p));
                            let fout = sdg.intern(NodeKind::FormalOut(t_inst, p));
                            let mh_caller = sdg.intern(NodeKind::MethodHeap(inst, p));
                            // The caller's state after the call includes the
                            // callee's writes.
                            sdg.add_edge(
                                aout,
                                Edge {
                                    target: fout,
                                    kind: EdgeKind::ParamOut { site },
                                },
                            );
                            sdg.add_edge(
                                mh_caller,
                                Edge {
                                    target: aout,
                                    kind: EdgeKind::Flow {
                                        excluded_from_thin: false,
                                    },
                                },
                            );
                        }
                    }
                }
                _ => {}
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use thinslice_ir::compile;
    use thinslice_pta::PtaConfig;

    fn build(src: &str) -> (thinslice_ir::Program, Sdg, Sdg) {
        let p = compile(&[("t.mj", src)]).unwrap();
        let pta = Pta::analyze(&p, PtaConfig::default());
        let ci = crate::builder::build_ci(&p, &pta);
        let modref = ModRef::compute(&p, &pta);
        let cs = build_cs(&p, &pta, &modref);
        (p, ci, cs)
    }

    const CONTAINER_PROGRAM: &str = "class Main { static void main() {
        Vector v = new Vector();
        v.add(new Main());
        Object o = v.get(0);
        print(1);
    } }";

    #[test]
    fn cs_mode_has_heap_parameter_nodes() {
        let (_, _, cs) = build(CONTAINER_PROGRAM);
        let heap_nodes = cs
            .nodes()
            .filter(|(_, k)| {
                matches!(
                    k,
                    NodeKind::FormalIn(..)
                        | NodeKind::FormalOut(..)
                        | NodeKind::ActualIn(..)
                        | NodeKind::ActualOut(..)
                        | NodeKind::MethodHeap(..)
                )
            })
            .count();
        assert!(heap_nodes > 0, "heap-parameter nodes must exist");
    }

    #[test]
    fn cs_graph_is_larger_than_ci_graph() {
        let (_, ci, cs) = build(CONTAINER_PROGRAM);
        assert!(
            cs.node_count() > ci.node_count(),
            "heap parameters blow the graph up: ci={} cs={}",
            ci.node_count(),
            cs.node_count()
        );
    }

    #[test]
    fn load_reads_method_heap_not_direct_store() {
        let (p, _, cs) = build(
            "class Box { Object item;
                void fill(Object o) { this.item = o; }
                Object take() { return this.item; }
             }
             class Main { static void main() {
                Box b = new Box();
                b.fill(new Main());
                Object o = b.take();
             } }",
        );
        let box_class = p.class_named("Box").unwrap();
        let take = p.resolve_method(box_class, "take").unwrap();
        let load = cs
            .stmt_nodes()
            .find(|(_, s)| s.method == take && matches!(p.instr(*s).kind, InstrKind::Load { .. }))
            .map(|(n, _)| n)
            .unwrap();
        let deps = cs.deps(load);
        assert!(
            deps.iter()
                .any(|e| matches!(cs.node(e.target), NodeKind::MethodHeap(..))),
            "the load must read through take's MethodHeap"
        );
        assert!(
            !deps.iter().any(|e| {
                cs.node(e.target)
                    .as_stmt()
                    .is_some_and(|s| matches!(p.instr(s).kind, InstrKind::Store { .. }))
            }),
            "heap-parameter mode must not contain direct store→load edges"
        );
    }

    #[test]
    fn heap_flows_through_formals_to_caller() {
        let (p, _, cs) = build(
            "class Box { Object item;
                void fill(Object o) { this.item = o; }
             }
             class Main { static void main() {
                Box b = new Box();
                Main m = new Main();
                b.fill(m);
                Object got = b.item;
             } }",
        );
        let box_class = p.class_named("Box").unwrap();
        let fill = p.resolve_method(box_class, "fill").unwrap();
        let fout = cs
            .nodes()
            .find(|(_, k)| match k {
                NodeKind::FormalOut(inst, _) => {
                    // The formal-out belongs to an instance of fill.
                    cs.nodes().any(|(_, k2)| matches!(k2, NodeKind::Stmt(i2, s2) if *i2 == *inst && s2.method == fill))
                }
                _ => false,
            })
            .map(|(n, _)| n)
            .expect("fill has a heap formal-out");
        let mut frontier = vec![fout];
        let mut found_store = false;
        let mut seen = thinslice_util::FxHashSet::default();
        while let Some(n) = frontier.pop() {
            if !seen.insert(n) {
                continue;
            }
            for e in cs.deps(n) {
                if cs
                    .node(e.target)
                    .as_stmt()
                    .is_some_and(|s| matches!(p.instr(s).kind, InstrKind::Store { .. }))
                {
                    found_store = true;
                }
                if matches!(cs.node(e.target), NodeKind::MethodHeap(..)) {
                    frontier.push(e.target);
                }
            }
        }
        assert!(
            found_store,
            "formal-out reaches the store through the aggregator"
        );
    }
}
