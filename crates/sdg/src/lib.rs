#![warn(missing_docs)]

//! # thinslice-sdg — dependence graphs for MJ
//!
//! Builds the (partial) system dependence graph the slicers traverse
//! (paper §5.1). Two heap-handling modes exist, matching the paper:
//!
//! * [`build_ci`] — **direct heap edges** (`HeapMode::DirectEdges`): a field
//!   load depends directly on every may-aliased store, program-wide. This
//!   is the scalable representation used by the context-insensitive thin
//!   and traditional slicers (§5.2).
//! * [`build_cs`] — **heap parameters** (`HeapMode::Parameters`): heap state
//!   is threaded through formal/actual in/out nodes per heap partition,
//!   computed from an interprocedural mod-ref analysis (§5.3). This is the
//!   representation whose size explodes on large programs.
//!
//! Every edge is labelled ([`EdgeKind`]) so one graph serves all four
//! slicers: thin slicers skip base-pointer flow edges and control edges;
//! traditional slicers follow everything.
//!
//! # Examples
//!
//! ```
//! use thinslice_ir::compile;
//! use thinslice_pta::{Pta, PtaConfig};
//! use thinslice_sdg::build_ci;
//!
//! let program = compile(&[(
//!     "t.mj",
//!     "class Main { static void main() { int x = 1; print(x); } }",
//! )]).unwrap();
//! let pta = Pta::analyze(&program, PtaConfig::default());
//! let sdg = build_ci(&program, &pta);
//! assert!(sdg.node_count() > 0);
//! ```

pub mod builder;
pub mod cache;
pub mod control;
pub mod csr;
pub mod fingerprint;
pub mod heap_params;
pub mod node;
pub mod snap;
pub mod stats;

#[allow(deprecated)]
pub use builder::build_ci_governed;
pub use builder::{build_ci, build_ci_cached, build_ci_ctx};
pub use cache::SdgCache;
pub use csr::{DenseDisplay, DepGraph, DownConsumers, FilteredCsr, FrozenSdg, NO_DISPLAY};
pub use fingerprint::body_fingerprint;
pub use heap_params::{build_cs, build_cs_cached, build_cs_ctx};
pub use node::{Edge, EdgeKind, NodeId, NodeKind};
pub use stats::SdgStats;

use thinslice_ir::{MethodId, StmtRef};
use thinslice_pta::CgNode;
use thinslice_util::FxHashMap;
use thinslice_util::IdxVec;

/// How heap-based value flow is represented.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HeapMode {
    /// Direct store→load edges (context-insensitive slicing; scalable).
    DirectEdges,
    /// Formal/actual heap parameter nodes (context-sensitive slicing).
    Parameters,
}

/// A dependence graph over statements and parameter nodes.
///
/// Edges are stored on the dependent node and point at its dependencies —
/// the direction the paper's Figure 3 draws, so backward slicing is plain
/// reachability along stored edges.
#[derive(Debug, Clone)]
pub struct Sdg {
    mode: HeapMode,
    nodes: IdxVec<NodeId, NodeKind>,
    node_of: FxHashMap<NodeKind, NodeId>,
    deps: IdxVec<NodeId, Vec<Edge>>,
    /// All instance nodes of a statement (one per analysed clone).
    nodes_of_stmt: FxHashMap<StmtRef, Vec<NodeId>>,
    /// Method of each instance, learned from its statement nodes.
    method_of_inst: FxHashMap<CgNode, MethodId>,
    edge_count: usize,
}

impl Sdg {
    /// Creates an empty graph in the given heap mode.
    pub fn empty(mode: HeapMode) -> Sdg {
        Sdg {
            mode,
            nodes: IdxVec::new(),
            node_of: FxHashMap::default(),
            deps: IdxVec::new(),
            nodes_of_stmt: FxHashMap::default(),
            method_of_inst: FxHashMap::default(),
            edge_count: 0,
        }
    }

    /// The graph's heap mode.
    pub fn mode(&self) -> HeapMode {
        self.mode
    }

    /// Interns a node, creating it if needed.
    pub fn intern(&mut self, kind: NodeKind) -> NodeId {
        if let Some(&n) = self.node_of.get(&kind) {
            return n;
        }
        let n = self.nodes.push(kind);
        self.node_of.insert(kind, n);
        self.deps.push(Vec::new());
        if let NodeKind::Stmt(inst, s) = kind {
            self.nodes_of_stmt.entry(s).or_default().push(n);
            self.method_of_inst.entry(inst).or_insert(s.method);
        }
        n
    }

    /// Looks up a node without creating it.
    pub fn find_node(&self, kind: NodeKind) -> Option<NodeId> {
        self.node_of.get(&kind).copied()
    }

    /// All instance nodes of a statement (empty if unreachable).
    pub fn stmt_nodes_of(&self, s: StmtRef) -> &[NodeId] {
        self.nodes_of_stmt.get(&s).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Some instance node of a statement, if the statement is reachable.
    /// Prefer [`Sdg::stmt_nodes_of`] when all clones matter (seeds do).
    pub fn stmt_node(&self, s: StmtRef) -> Option<NodeId> {
        self.stmt_nodes_of(s).first().copied()
    }

    /// The statement a node is *displayed as* when it appears in a slice:
    /// actual-parameter and heap actual-in/out nodes belong to their call
    /// statement (reaching an argument slot means the user inspects the
    /// call line — e.g. `names.add(firstName)` in the paper's Figure 1
    /// thin slice).
    pub fn display_stmt(&self, n: NodeId) -> Option<StmtRef> {
        match self.nodes[n] {
            NodeKind::Stmt(_, s) => Some(s),
            NodeKind::ActualParam(site, _)
            | NodeKind::ActualIn(site, _)
            | NodeKind::ActualOut(site, _) => self.nodes[site].as_stmt(),
            _ => None,
        }
    }

    /// The kind of a node.
    pub fn node(&self, n: NodeId) -> NodeKind {
        self.nodes[n]
    }

    /// Adds a dependence edge from `from` onto `edge.target` (deduplicated).
    pub fn add_edge(&mut self, from: NodeId, edge: Edge) {
        if self.deps[from].contains(&edge) {
            return;
        }
        self.deps[from].push(edge);
        self.edge_count += 1;
    }

    /// The dependencies of `n`.
    pub fn deps(&self, n: NodeId) -> &[Edge] {
        &self.deps[n]
    }

    /// Iterates over all nodes.
    pub fn nodes(&self) -> impl Iterator<Item = (NodeId, &NodeKind)> + '_ {
        self.nodes.iter_enumerated()
    }

    /// Iterates over statement nodes only.
    pub fn stmt_nodes(&self) -> impl Iterator<Item = (NodeId, StmtRef)> + '_ {
        self.nodes
            .iter_enumerated()
            .filter_map(|(n, k)| k.as_stmt().map(|s| (n, s)))
    }

    /// Total node count.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Total edge count.
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Number of method instances (call-graph clones) with nodes in the
    /// graph — the CSR segment count for incremental accounting.
    pub fn instance_count(&self) -> usize {
        self.method_of_inst.len()
    }

    /// Structural equality: same heap mode, same node interning order, and
    /// identical per-node dependence lists.
    ///
    /// Because the frozen CSR, its traversal permutation, and every slice
    /// answer are pure functions of this structure (plus seeds), two graphs
    /// for which this holds yield byte-identical slicer output — the test
    /// the incremental session uses to keep a previous freeze and its memo
    /// tables after an edit.
    pub fn same_graph(&self, other: &Sdg) -> bool {
        self.mode == other.mode && self.nodes == other.nodes && self.deps == other.deps
    }

    /// The method a node belongs to (call-site nodes belong to the caller).
    pub fn method_of(&self, n: NodeId) -> MethodId {
        match self.nodes[n] {
            NodeKind::Stmt(_, s) => s.method,
            NodeKind::ActualParam(site, _)
            | NodeKind::ActualIn(site, _)
            | NodeKind::ActualOut(site, _) => self.method_of(site),
            NodeKind::Entry(i)
            | NodeKind::FormalParam(i, _)
            | NodeKind::RetMerge(i)
            | NodeKind::FormalIn(i, _)
            | NodeKind::FormalOut(i, _)
            | NodeKind::MethodHeap(i, _) => self.instance_method(i),
        }
    }

    /// The instance a node belongs to, when it has one.
    pub fn instance_of(&self, n: NodeId) -> Option<CgNode> {
        match self.nodes[n] {
            NodeKind::Stmt(i, _)
            | NodeKind::Entry(i)
            | NodeKind::FormalParam(i, _)
            | NodeKind::RetMerge(i)
            | NodeKind::FormalIn(i, _)
            | NodeKind::FormalOut(i, _)
            | NodeKind::MethodHeap(i, _) => Some(i),
            NodeKind::ActualParam(site, _)
            | NodeKind::ActualIn(site, _)
            | NodeKind::ActualOut(site, _) => self.instance_of(site),
        }
    }

    fn instance_method(&self, inst: CgNode) -> MethodId {
        // Statement nodes are interned before any parameter/entry node of
        // their instance, so the map is always populated by then.
        *self
            .method_of_inst
            .get(&inst)
            .expect("instance has statements")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use thinslice_ir::{BlockId, Loc};

    fn stmt(m: u32, i: u32) -> NodeKind {
        NodeKind::Stmt(
            CgNode::new(0),
            StmtRef {
                method: MethodId::new(m as usize),
                loc: Loc {
                    block: BlockId::new(0),
                    index: i,
                },
            },
        )
    }

    #[test]
    fn intern_is_idempotent() {
        let mut g = Sdg::empty(HeapMode::DirectEdges);
        let a = g.intern(stmt(0, 0));
        let b = g.intern(stmt(0, 0));
        assert_eq!(a, b);
        assert_eq!(g.node_count(), 1);
    }

    #[test]
    fn edges_dedup() {
        let mut g = Sdg::empty(HeapMode::DirectEdges);
        let a = g.intern(stmt(0, 0));
        let b = g.intern(stmt(0, 1));
        let e = Edge {
            target: b,
            kind: EdgeKind::Control,
        };
        g.add_edge(a, e);
        g.add_edge(a, e);
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.deps(a), &[e]);
        // A different kind between the same nodes is a distinct edge.
        g.add_edge(
            a,
            Edge {
                target: b,
                kind: EdgeKind::Flow {
                    excluded_from_thin: false,
                },
            },
        );
        assert_eq!(g.edge_count(), 2);
    }

    #[test]
    fn method_of_follows_node_kind() {
        let mut g = Sdg::empty(HeapMode::DirectEdges);
        let n = g.intern(stmt(3, 0));
        assert_eq!(g.method_of(n), MethodId::new(3));
        assert_eq!(g.instance_of(n), Some(CgNode::new(0)));
    }

    #[test]
    fn stmt_nodes_of_collects_clones() {
        let mut g = Sdg::empty(HeapMode::DirectEdges);
        let sr = StmtRef {
            method: MethodId::new(1),
            loc: Loc {
                block: BlockId::new(0),
                index: 0,
            },
        };
        let a = g.intern(NodeKind::Stmt(CgNode::new(0), sr));
        let b = g.intern(NodeKind::Stmt(CgNode::new(1), sr));
        assert_eq!(g.stmt_nodes_of(sr), &[a, b]);
        assert_eq!(g.display_stmt(a), Some(sr));
        assert_eq!(g.display_stmt(b), Some(sr));
    }
}
