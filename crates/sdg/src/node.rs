//! Dependence-graph nodes and edges.
//!
//! Nodes are keyed by call-graph *instance* ([`CgNode`]: method × analysis
//! context), not by method: a container method cloned per receiver object
//! contributes one set of statement nodes per clone, exactly like the SDG
//! the paper derives from WALA's cloned call graph. This is what makes the
//! object-sensitivity comparison (`NoObjSens` columns of Tables 2–3)
//! meaningful: without cloning, one `Vector.get` node serves every vector
//! in the program and the slicer wades through all their clients.

use thinslice_ir::StmtRef;
use thinslice_pta::{CgNode, PartId};
use thinslice_util::new_index;

new_index!(
    /// Identifies a node in an [`crate::Sdg`].
    pub struct NodeId
);

/// What a dependence-graph node stands for.
///
/// Only statement-backed nodes are *counted* by the inspection metric;
/// parameter/entry/heap nodes are traversed silently. Actual-parameter and
/// heap actual-in/out nodes carry the [`NodeId`] of their call statement so
/// they display as the call line.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NodeKind {
    /// A real IR statement in one method instance.
    Stmt(CgNode, StmtRef),
    /// A method-instance entry (anchor for interprocedural control).
    Entry(CgNode),
    /// Formal parameter `index` of an instance (0 = `this`).
    FormalParam(CgNode, u32),
    /// Actual argument `index` at a call site (the call statement's node).
    ActualParam(NodeId, u32),
    /// The merged return value of a method instance.
    RetMerge(CgNode),
    /// Heap partition flowing *into* an instance (context-sensitive mode).
    FormalIn(CgNode, PartId),
    /// Heap partition flowing *out of* an instance (context-sensitive mode).
    FormalOut(CgNode, PartId),
    /// Heap partition state entering a call site (context-sensitive mode).
    ActualIn(NodeId, PartId),
    /// Heap partition state leaving a call site (context-sensitive mode).
    ActualOut(NodeId, PartId),
    /// Aggregator for a heap partition's definitions within one instance
    /// (context-sensitive mode).
    MethodHeap(CgNode, PartId),
}

impl NodeKind {
    /// The statement directly behind the node, if it is one.
    pub fn as_stmt(&self) -> Option<StmtRef> {
        match self {
            NodeKind::Stmt(_, s) => Some(*s),
            _ => None,
        }
    }
}

/// A dependence edge, stored on the *dependent* node and pointing at what it
/// depends on (the paper's Figure 3 draws edges in this direction, so
/// slicing is plain reachability).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Edge {
    /// The dependency (producer side).
    pub target: NodeId,
    /// Classification.
    pub kind: EdgeKind,
}

/// Dependence-edge classification.
///
/// Thin slices follow only `Flow { excluded_from_thin: false }` and the
/// parameter-passing edges; everything else is an *explainer* edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EdgeKind {
    /// A (possibly heap-based) flow dependence. `excluded_from_thin` marks
    /// base-pointer and array-index uses — the dependences a thin slice
    /// ignores (paper §3).
    Flow {
        /// True for base-pointer and array-index flow dependences.
        excluded_from_thin: bool,
    },
    /// Intra-method control dependence (to the controlling branch) or the
    /// method-entry membership edge.
    Control,
    /// Interprocedural control: method entry → call site invoking it.
    Call,
    /// Ascend from a formal (param or heap in) to the matching actual at
    /// `site` — callee to caller.
    ParamIn {
        /// The call statement node this binding belongs to.
        site: NodeId,
    },
    /// Descend from a caller-side consumer (call result, actual-out) to the
    /// callee's exit (return merge, formal-out) at `site`.
    ParamOut {
        /// The call statement node this binding belongs to.
        site: NodeId,
    },
    /// A summary edge (actual-out → actual-in), inserted during
    /// context-sensitive tabulation.
    Summary,
}

impl EdgeKind {
    /// Whether a thin slicer follows this edge.
    pub fn in_thin_slice(&self) -> bool {
        match self {
            EdgeKind::Flow { excluded_from_thin } => !excluded_from_thin,
            EdgeKind::ParamIn { .. } | EdgeKind::ParamOut { .. } | EdgeKind::Summary => true,
            EdgeKind::Control | EdgeKind::Call => false,
        }
    }

    /// Whether a traditional (full) slicer follows this edge.
    pub fn in_traditional_slice(&self) -> bool {
        true
    }

    /// Whether a traditional *data* slicer (no control dependence, as in the
    /// paper's experimental configuration) follows this edge.
    pub fn in_data_slice(&self) -> bool {
        !matches!(self, EdgeKind::Control | EdgeKind::Call)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edge_classification() {
        assert!(EdgeKind::Flow {
            excluded_from_thin: false
        }
        .in_thin_slice());
        assert!(!EdgeKind::Flow {
            excluded_from_thin: true
        }
        .in_thin_slice());
        assert!(EdgeKind::Flow {
            excluded_from_thin: true
        }
        .in_data_slice());
        assert!(!EdgeKind::Control.in_thin_slice());
        assert!(!EdgeKind::Control.in_data_slice());
        assert!(EdgeKind::Control.in_traditional_slice());
        assert!(EdgeKind::Summary.in_thin_slice());
    }
}
