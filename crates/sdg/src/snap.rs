//! Snapshot codecs for dependence graphs (warm-start persistence).
//!
//! Three artifacts round-trip through here: the growable [`Sdg`] (encoded
//! as a replay script — node kinds in intern order plus per-node edge
//! lists — so decoding through [`Sdg::intern`]/[`Sdg::add_edge`] rebuilds
//! every internal index byte-identically), the [`FrozenSdg`] CSR arrays
//! (written verbatim, including the BFS permutation, so a restored graph
//! answers every query in the same order as the one that was frozen), and
//! the [`DownConsumers`] tabulation index (the memo seed the
//! context-sensitive slicer would otherwise rebuild on first use).
//!
//! All encodings are canonical: hash maps are written with sorted keys and
//! verbatim per-key payloads, so encoding the same graph twice yields the
//! same bytes and a decoded graph re-encodes to its input.

use crate::csr::{DownConsumers, FrozenSdg};
use crate::node::{Edge, EdgeKind, NodeId, NodeKind};
use crate::{HeapMode, Sdg};
use std::sync::OnceLock;
use thinslice_ir::snap::{decode_stmt_ref, encode_stmt_ref};
use thinslice_ir::StmtRef;
use thinslice_pta::{CgNode, PartId};
use thinslice_util::{ByteReader, ByteWriter, CodecError, FxHashMap, Idx, IdxVec};

fn mode_tag(m: HeapMode) -> u8 {
    match m {
        HeapMode::DirectEdges => 0,
        HeapMode::Parameters => 1,
    }
}

fn d_mode(r: &mut ByteReader) -> Result<HeapMode, CodecError> {
    match r.u8()? {
        0 => Ok(HeapMode::DirectEdges),
        1 => Ok(HeapMode::Parameters),
        _ => Err(CodecError::Malformed("heap mode")),
    }
}

fn node_kind(w: &mut ByteWriter, k: NodeKind) {
    let cg = |w: &mut ByteWriter, n: CgNode| w.vu64(n.index() as u64);
    let nid = |w: &mut ByteWriter, n: NodeId| w.vu64(n.index() as u64);
    let part = |w: &mut ByteWriter, p: PartId| w.vu64(p.index() as u64);
    match k {
        NodeKind::Stmt(n, s) => {
            w.u8(0);
            cg(w, n);
            encode_stmt_ref(w, s);
        }
        NodeKind::Entry(n) => {
            w.u8(1);
            cg(w, n);
        }
        NodeKind::FormalParam(n, i) => {
            w.u8(2);
            cg(w, n);
            w.vu64(u64::from(i));
        }
        NodeKind::ActualParam(site, i) => {
            w.u8(3);
            nid(w, site);
            w.vu64(u64::from(i));
        }
        NodeKind::RetMerge(n) => {
            w.u8(4);
            cg(w, n);
        }
        NodeKind::FormalIn(n, p) => {
            w.u8(5);
            cg(w, n);
            part(w, p);
        }
        NodeKind::FormalOut(n, p) => {
            w.u8(6);
            cg(w, n);
            part(w, p);
        }
        NodeKind::ActualIn(site, p) => {
            w.u8(7);
            nid(w, site);
            part(w, p);
        }
        NodeKind::ActualOut(site, p) => {
            w.u8(8);
            nid(w, site);
            part(w, p);
        }
        NodeKind::MethodHeap(n, p) => {
            w.u8(9);
            cg(w, n);
            part(w, p);
        }
    }
}

fn d_node_kind(r: &mut ByteReader) -> Result<NodeKind, CodecError> {
    let tag = r.u8()?;
    let cg = |r: &mut ByteReader| -> Result<CgNode, CodecError> { Ok(CgNode::new(r.vusize()?)) };
    let nid = |r: &mut ByteReader| -> Result<NodeId, CodecError> { Ok(NodeId::new(r.vusize()?)) };
    let part = |r: &mut ByteReader| -> Result<PartId, CodecError> { Ok(PartId::new(r.vusize()?)) };
    Ok(match tag {
        0 => NodeKind::Stmt(cg(r)?, decode_stmt_ref(r)?),
        1 => NodeKind::Entry(cg(r)?),
        2 => NodeKind::FormalParam(cg(r)?, r.vu64()? as u32),
        3 => NodeKind::ActualParam(nid(r)?, r.vu64()? as u32),
        4 => NodeKind::RetMerge(cg(r)?),
        5 => NodeKind::FormalIn(cg(r)?, part(r)?),
        6 => NodeKind::FormalOut(cg(r)?, part(r)?),
        7 => NodeKind::ActualIn(nid(r)?, part(r)?),
        8 => NodeKind::ActualOut(nid(r)?, part(r)?),
        9 => NodeKind::MethodHeap(cg(r)?, part(r)?),
        _ => return Err(CodecError::Malformed("node kind")),
    })
}

/// A [`NodeId`] as a dense `u32` (the CSR arrays already cap node and
/// edge counts at `u32`, so this cannot truncate on any freezable graph).
fn nid32(n: NodeId) -> u32 {
    u32::try_from(n.index()).expect("node id fits in u32")
}

fn d_nid32(v: u32) -> NodeId {
    NodeId::new(v as usize)
}

/// One byte per edge kind. `Flow`'s `excluded_from_thin` flag is folded
/// into the tag (0/1) so the hot arrays stay branch-light; only param
/// edges carry a payload (the call site), written to a separate trailing
/// varint stream.
fn edge_tag(k: &EdgeKind) -> u8 {
    match k {
        EdgeKind::Flow {
            excluded_from_thin: false,
        } => 0,
        EdgeKind::Flow {
            excluded_from_thin: true,
        } => 1,
        EdgeKind::Control => 2,
        EdgeKind::Call => 3,
        EdgeKind::ParamIn { .. } => 4,
        EdgeKind::ParamOut { .. } => 5,
        EdgeKind::Summary => 6,
    }
}

/// Writes a flat edge slice as struct-of-arrays: dense `u32` targets,
/// raw tag bytes, then the param-edge call sites as varints. Decoding
/// pays one bounds check per array instead of one branchy varint per
/// element, which is where most of the warm-start time used to go.
fn encode_edges(edges: &[Edge], w: &mut ByteWriter) {
    let targets: Vec<u32> = edges.iter().map(|e| nid32(e.target)).collect();
    w.u32s(&targets);
    for e in edges {
        w.u8(edge_tag(&e.kind));
    }
    for e in edges {
        if let EdgeKind::ParamIn { site } | EdgeKind::ParamOut { site } = e.kind {
            w.vu64(site.index() as u64);
        }
    }
}

/// Decodes a flat edge array written by `encode_edges`.
fn decode_edges(r: &mut ByteReader) -> Result<Vec<Edge>, CodecError> {
    let targets = r.u32s()?;
    // The tag bytes borrow from the reader's buffer, but the param-site
    // stream after them needs the cursor back, so copy them out first.
    let tags = r.raw(targets.len())?.to_vec();
    let mut edges = Vec::with_capacity(targets.len());
    for (&target, &tag) in targets.iter().zip(&tags) {
        let kind = match tag {
            0 => EdgeKind::Flow {
                excluded_from_thin: false,
            },
            1 => EdgeKind::Flow {
                excluded_from_thin: true,
            },
            2 => EdgeKind::Control,
            3 => EdgeKind::Call,
            4 => EdgeKind::ParamIn {
                site: NodeId::new(r.vusize()?),
            },
            5 => EdgeKind::ParamOut {
                site: NodeId::new(r.vusize()?),
            },
            6 => EdgeKind::Summary,
            _ => return Err(CodecError::Malformed("edge kind")),
        };
        edges.push(Edge {
            target: d_nid32(target),
            kind,
        });
    }
    Ok(edges)
}

/// Encodes a growable [`Sdg`]: heap mode, node kinds in intern order, then
/// the per-node dependence lists as a degree array plus one flat
/// struct-of-arrays edge block (see `encode_edges`).
pub fn encode_sdg(sdg: &Sdg, w: &mut ByteWriter) {
    w.u8(mode_tag(sdg.mode()));
    w.vusize(sdg.node_count());
    for (_, &kind) in sdg.nodes() {
        node_kind(w, kind);
    }
    let degrees: Vec<u32> = sdg
        .nodes()
        .map(|(id, _)| u32::try_from(sdg.deps(id).len()).expect("node degree fits in u32"))
        .collect();
    w.u32s(&degrees);
    let flat: Vec<Edge> = sdg
        .nodes()
        .flat_map(|(id, _)| sdg.deps(id).iter().copied())
        .collect();
    encode_edges(&flat, w);
}

/// Decodes a graph written by [`encode_sdg`] by replaying its node
/// interning, which rebuilds every internal index (node map, statement
/// map, instance map) exactly as the original build did, then adopting
/// the flat edge block directly: the encoder wrote lists that
/// [`Sdg::add_edge`] had already deduplicated, so restore skips the
/// per-edge dedup scan.
pub fn decode_sdg(r: &mut ByteReader) -> Result<Sdg, CodecError> {
    let mode = d_mode(r)?;
    let mut sdg = Sdg::empty(mode);
    let n = r.vusize()?;
    let cap = n.min(r.remaining());
    sdg.nodes = IdxVec::with_capacity(cap);
    sdg.deps = IdxVec::with_capacity(cap);
    sdg.node_of.reserve(cap);
    sdg.nodes_of_stmt.reserve(cap);
    for i in 0..n {
        let id = sdg.intern(d_node_kind(r)?);
        if id.index() != i {
            return Err(CodecError::Malformed("duplicate sdg node"));
        }
    }
    let degrees = r.u32s()?;
    if degrees.len() != n {
        return Err(CodecError::Malformed("sdg degree array"));
    }
    let edges = decode_edges(r)?;
    let total: usize = degrees.iter().map(|&d| d as usize).sum();
    if total != edges.len() {
        return Err(CodecError::Malformed("sdg edge count"));
    }
    let mut rest = edges.as_slice();
    for (i, &deg) in degrees.iter().enumerate() {
        let (list, tail) = rest.split_at(deg as usize);
        rest = tail;
        sdg.deps[NodeId::new(i)] = list.to_vec();
    }
    sdg.edge_count = total;
    Ok(sdg)
}

/// Encodes a [`DownConsumers`] index (the tabulation memo seed) as four
/// dense `u32` arrays: call sites, exits, offsets, consumers.
pub fn encode_down(down: &DownConsumers, w: &mut ByteWriter) {
    let sites: Vec<u32> = down.keys.iter().map(|&(site, _)| nid32(site)).collect();
    let exits: Vec<u32> = down.keys.iter().map(|&(_, exit)| nid32(exit)).collect();
    w.u32s(&sites);
    w.u32s(&exits);
    w.u32s(&down.offsets);
    let consumers: Vec<u32> = down.consumers.iter().map(|&c| nid32(c)).collect();
    w.u32s(&consumers);
}

/// Decodes an index written by [`encode_down`].
pub fn decode_down(r: &mut ByteReader) -> Result<DownConsumers, CodecError> {
    let sites = r.u32s()?;
    let exits = r.u32s()?;
    if sites.len() != exits.len() {
        return Err(CodecError::Malformed("down key arrays"));
    }
    let keys = sites
        .iter()
        .zip(&exits)
        .map(|(&s, &e)| (d_nid32(s), d_nid32(e)))
        .collect();
    let offsets = r.u32s()?;
    let consumers = r.u32s()?.into_iter().map(d_nid32).collect();
    Ok(DownConsumers {
        keys,
        offsets,
        consumers,
    })
}

/// Encodes a [`FrozenSdg`]'s CSR arrays verbatim — including the BFS
/// permutation and the dense display-statement numbering — plus the cached
/// [`DownConsumers`] index if it has been built. The hot arrays use the
/// bulk struct-of-arrays layouts (`encode_edges`, [`ByteWriter::u32s`]).
pub fn encode_frozen(f: &FrozenSdg, w: &mut ByteWriter) {
    w.u8(mode_tag(f.mode));
    w.u32s(&f.offsets);
    encode_edges(&f.edges, w);
    w.vusize(f.kinds.len());
    for &k in &f.kinds {
        node_kind(w, k);
    }
    w.vusize(f.display.len());
    for d in &f.display {
        match d {
            Some(s) => {
                w.bool(true);
                encode_stmt_ref(w, *s);
            }
            None => w.bool(false),
        }
    }
    w.u32s(&f.display_idx);
    w.vusize(f.display_stmts.len());
    for &s in &f.display_stmts {
        encode_stmt_ref(w, s);
    }
    let mut stmts: Vec<&StmtRef> = f.nodes_of_stmt.keys().collect();
    stmts.sort();
    w.vusize(stmts.len());
    for s in stmts {
        encode_stmt_ref(w, *s);
        let nodes: Vec<u32> = f.nodes_of_stmt[s].iter().map(|&n| nid32(n)).collect();
        w.u32s(&nodes);
    }
    let perm: Vec<u32> = f.perm.iter().map(|&p| nid32(p)).collect();
    w.u32s(&perm);
    let inv: Vec<u32> = f.inv.iter().map(|&p| nid32(p)).collect();
    w.u32s(&inv);
    match f.down.get() {
        Some(down) => {
            w.bool(true);
            encode_down(down, w);
        }
        None => w.bool(false),
    }
}

/// Decodes a graph written by [`encode_frozen`]. A serialized
/// [`DownConsumers`] index is seeded into the lazy cache, so the first
/// context-sensitive query after a warm start pays no index-build cost.
pub fn decode_frozen(r: &mut ByteReader) -> Result<FrozenSdg, CodecError> {
    let mode = d_mode(r)?;
    let offsets = r.u32s()?;
    let edges = decode_edges(r)?;
    let n_kinds = r.vusize()?;
    let mut kinds = Vec::with_capacity(n_kinds.min(r.remaining()));
    for _ in 0..n_kinds {
        kinds.push(d_node_kind(r)?);
    }
    let n_display = r.vusize()?;
    let mut display = Vec::with_capacity(n_display.min(r.remaining()));
    for _ in 0..n_display {
        display.push(if r.bool()? {
            Some(decode_stmt_ref(r)?)
        } else {
            None
        });
    }
    let display_idx = r.u32s()?;
    let n_display_stmts = r.vusize()?;
    let mut display_stmts = Vec::with_capacity(n_display_stmts.min(r.remaining()));
    for _ in 0..n_display_stmts {
        display_stmts.push(decode_stmt_ref(r)?);
    }
    let n_stmts = r.vusize()?;
    let mut nodes_of_stmt: FxHashMap<StmtRef, Vec<NodeId>> =
        FxHashMap::with_capacity_and_hasher(n_stmts.min(r.remaining()), Default::default());
    for _ in 0..n_stmts {
        let s = decode_stmt_ref(r)?;
        let nodes = r.u32s()?.into_iter().map(d_nid32).collect();
        nodes_of_stmt.insert(s, nodes);
    }
    let perm = r.u32s()?.into_iter().map(d_nid32).collect();
    let inv = r.u32s()?.into_iter().map(d_nid32).collect();
    let down = OnceLock::new();
    if r.bool()? {
        let _ = down.set(decode_down(r)?);
    }
    Ok(FrozenSdg {
        mode,
        offsets,
        edges,
        kinds,
        display,
        display_idx,
        display_stmts,
        nodes_of_stmt,
        perm,
        inv,
        down,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csr::DepGraph;
    use crate::{build_ci, build_cs};
    use thinslice_ir::compile;
    use thinslice_pta::{ModRef, Pta, PtaConfig};

    const SRC: &str = r#"
        class Main {
            static void main() {
                Box b = new Box();
                b.set(7);
                int v = b.get();
                if (v > 3) { print(v); } else { print(0); }
            }
        }
        class Box {
            int val;
            void set(int v) { this.val = v; }
            int get() { return this.val; }
        }
    "#;

    fn graphs() -> (Sdg, Sdg) {
        let program = compile(&[("t.mj", SRC)]).unwrap();
        let pta = Pta::analyze(&program, PtaConfig::default());
        let modref = ModRef::compute(&program, &pta);
        (build_ci(&program, &pta), build_cs(&program, &pta, &modref))
    }

    fn roundtrip_sdg(g: &Sdg) -> Sdg {
        let mut w = ByteWriter::new();
        encode_sdg(g, &mut w);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        let back = decode_sdg(&mut r).unwrap();
        assert!(r.is_at_end());
        back
    }

    fn assert_frozen_identical(a: &FrozenSdg, b: &FrozenSdg) {
        assert_eq!(a.mode, b.mode);
        assert_eq!(a.offsets, b.offsets);
        assert_eq!(a.edges, b.edges);
        assert_eq!(a.kinds, b.kinds);
        assert_eq!(a.display, b.display);
        assert_eq!(a.display_idx, b.display_idx);
        assert_eq!(a.display_stmts, b.display_stmts);
        assert_eq!(a.nodes_of_stmt, b.nodes_of_stmt);
        assert_eq!(a.perm, b.perm);
        assert_eq!(a.inv, b.inv);
    }

    #[test]
    fn sdg_replay_roundtrip_is_identical() {
        for g in [graphs().0, graphs().1] {
            let back = roundtrip_sdg(&g);
            assert!(g.same_graph(&back));
            // The replay must also rebuild the derived indexes: freezing
            // both graphs yields byte-identical CSR arrays.
            assert_frozen_identical(&g.freeze(), &back.freeze());
        }
    }

    #[test]
    fn sdg_encode_is_deterministic() {
        let (ci, _) = graphs();
        let (ci2, _) = graphs();
        let mut w1 = ByteWriter::new();
        let mut w2 = ByteWriter::new();
        encode_sdg(&ci, &mut w1);
        encode_sdg(&ci2, &mut w2);
        assert_eq!(w1.into_bytes(), w2.into_bytes());
    }

    #[test]
    fn frozen_roundtrip_preserves_arrays_and_queries() {
        let (ci, cs) = graphs();
        for f in [ci.freeze(), cs.freeze()] {
            let mut w = ByteWriter::new();
            encode_frozen(&f, &mut w);
            let bytes = w.into_bytes();
            let mut r = ByteReader::new(&bytes);
            let back = decode_frozen(&mut r).unwrap();
            assert!(r.is_at_end());
            assert_frozen_identical(&f, &back);
            // Query surface: same deps in the same order for every node,
            // same permutation mapping.
            for i in 0..f.node_count() {
                let n = NodeId::new(i);
                assert_eq!(f.deps(n), back.deps(n));
                assert_eq!(f.node(n), back.node(n));
                assert_eq!(f.display_stmt(n), back.display_stmt(n));
                assert_eq!(f.to_internal(n), back.to_internal(n));
                assert_eq!(f.to_external(n), back.to_external(n));
            }
        }
    }

    #[test]
    fn frozen_roundtrip_carries_down_consumers_seed() {
        let (_, cs) = graphs();
        let f = cs.freeze();
        // Force-build the index, then snapshot: the restored graph must
        // answer down_consumers() without rebuilding (we check equality of
        // the index contents via lookups over every key).
        let built = f.down_consumers().clone();
        let mut w = ByteWriter::new();
        encode_frozen(&f, &mut w);
        let bytes = w.into_bytes();
        let back = decode_frozen(&mut ByteReader::new(&bytes)).unwrap();
        let seeded = back.down.get().expect("down index seeded from snapshot");
        assert_eq!(built.keys, seeded.keys);
        assert_eq!(built.offsets, seeded.offsets);
        assert_eq!(built.consumers, seeded.consumers);

        // Without the force-build, the flag is absent and the restored
        // graph builds the identical index lazily.
        let f2 = cs.freeze();
        let mut w2 = ByteWriter::new();
        encode_frozen(&f2, &mut w2);
        let bytes2 = w2.into_bytes();
        let back2 = decode_frozen(&mut ByteReader::new(&bytes2)).unwrap();
        assert!(back2.down.get().is_none());
        let lazy = back2.down_consumers();
        assert_eq!(built.keys, lazy.keys);
        assert_eq!(built.offsets, lazy.offsets);
        assert_eq!(built.consumers, lazy.consumers);
    }

    #[test]
    fn truncated_sdg_bytes_are_rejected() {
        let (ci, _) = graphs();
        let mut w = ByteWriter::new();
        encode_sdg(&ci, &mut w);
        let bytes = w.into_bytes();
        for cut in (0..bytes.len()).step_by(61) {
            let mut r = ByteReader::new(&bytes[..cut]);
            match decode_sdg(&mut r) {
                Err(_) => {}
                // A prefix can decode cleanly only if the reader consumed
                // everything and the remainder was pure edge data; the
                // caller's section framing catches that. Here we just
                // require no panic and no trailing garbage acceptance.
                Ok(_) => assert!(r.is_at_end() || r.remaining() > 0),
            }
        }
    }
}
