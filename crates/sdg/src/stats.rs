//! SDG size statistics, used by Table 1 and the scalability experiment.

use crate::node::NodeKind;
use crate::Sdg;

/// Node/edge counts of one dependence graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SdgStats {
    /// Total nodes.
    pub nodes: usize,
    /// Nodes that are real statements (the paper's "SDG statements, but
    /// excluding parameter passing statements introduced to model the
    /// heap").
    pub stmt_nodes: usize,
    /// Parameter-passing nodes for ordinary params/returns.
    pub param_nodes: usize,
    /// Heap-parameter nodes (formal/actual in/out + aggregators) — the
    /// explosion source in context-sensitive mode.
    pub heap_param_nodes: usize,
    /// Total edges.
    pub edges: usize,
}

impl SdgStats {
    /// Computes statistics for `sdg`.
    pub fn compute(sdg: &Sdg) -> SdgStats {
        let mut stmt_nodes = 0;
        let mut param_nodes = 0;
        let mut heap_param_nodes = 0;
        for (_, kind) in sdg.nodes() {
            match kind {
                NodeKind::Stmt(..) => stmt_nodes += 1,
                NodeKind::FormalParam(..) | NodeKind::ActualParam(..) | NodeKind::RetMerge(_) => {
                    param_nodes += 1
                }
                NodeKind::FormalIn(..)
                | NodeKind::FormalOut(..)
                | NodeKind::ActualIn(..)
                | NodeKind::ActualOut(..)
                | NodeKind::MethodHeap(..) => heap_param_nodes += 1,
                NodeKind::Entry(_) => {}
            }
        }
        SdgStats {
            nodes: sdg.node_count(),
            stmt_nodes,
            param_nodes,
            heap_param_nodes,
            edges: sdg.edge_count(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{build_ci, build_cs};
    use thinslice_ir::compile;
    use thinslice_pta::{ModRef, Pta, PtaConfig};

    #[test]
    fn cs_heap_param_nodes_dominate_growth() {
        let p = compile(&[(
            "t.mj",
            "class Main { static void main() {
                Vector v = new Vector();
                v.add(new Main());
                Object o = v.get(0);
            } }",
        )])
        .unwrap();
        let pta = Pta::analyze(&p, PtaConfig::default());
        let ci = SdgStats::compute(&build_ci(&p, &pta));
        let modref = ModRef::compute(&p, &pta);
        let cs = SdgStats::compute(&build_cs(&p, &pta, &modref));
        assert_eq!(ci.heap_param_nodes, 0);
        assert!(cs.heap_param_nodes > 0);
        assert_eq!(
            ci.stmt_nodes, cs.stmt_nodes,
            "same statements in both modes"
        );
        assert!(cs.nodes > ci.nodes);
    }
}
