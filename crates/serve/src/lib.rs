#![warn(missing_docs)]

//! `thinslice-serve`: a long-lived, multi-tenant slice server.
//!
//! The PR 4 session architecture made one program's analysis reusable
//! across queries; this crate makes it a **service**: a daemon speaking a
//! line-delimited JSON protocol (one request per line, one response line
//! per request) over stdin or a Unix socket, multiplexing many programs
//! and many clients over one process.
//!
//! The three layers:
//!
//! * [`protocol`] — request parsing and deterministic response
//!   serialization (`thinslice.serve_response.v1`), hardened so any
//!   malformed line becomes a structured error response;
//! * [`pool`] — the session pool: program-hash keying, LRU eviction
//!   under a session cap, a govern-backed resident watermark, and
//!   quarantine-and-rebuild for sessions poisoned by a panicking query;
//! * [`server`] — the request loop: per-client fair scheduling,
//!   admission control walking the CS → CI → truncated degradation
//!   ladder fleet-wide under load, per-request `catch_unwind`
//!   isolation with bounded retry, deadlines, deterministic fault
//!   injection, and graceful shutdown that drains in-flight queries.
//!
//! An always-on observability plane rides along: a fixed-capacity flight
//! recorder of structured lifecycle events, per-tenant and per-session
//! latency/counter tables, and a slow-query log, all reported by the
//! `stats` op as an embedded `thinslice.serve_stats.v1` document —
//! without ever touching the bytes of non-stats responses.
//!
//! # Examples
//!
//! Drive a server in-process (exactly what the chaos suite does):
//!
//! ```
//! use std::io::Cursor;
//! use thinslice_serve::{shared_out, ServeConfig, Server};
//!
//! let script = concat!(
//!     r#"{"op":"load","id":1,"sources":[{"name":"t.mj","text":"class Main { static void main() {\nint x = 1;\nprint(x);\n} }"}]}"#,
//!     "\n",
//!     r#"{"op":"slice","id":2,"sources":[{"name":"t.mj","text":"class Main { static void main() {\nint x = 1;\nprint(x);\n} }"}],"seed":{"file":"t.mj","line":3}}"#,
//!     "\n",
//!     r#"{"op":"shutdown","id":3}"#,
//!     "\n",
//! );
//! let out = shared_out(Vec::new());
//! let server = Server::new(ServeConfig::default());
//! let summary = server.serve(Cursor::new(script), out.clone());
//! assert_eq!(summary.served, 3);
//! assert_eq!(summary.errors, 0);
//! ```

pub mod pool;
pub mod protocol;
pub mod server;

pub use pool::{PoolConfig, SessionPool};
pub use protocol::{Admission, RESPONSE_SCHEMA, SERVE_STATS_SCHEMA};
pub use server::{shared_out, Ingest, ServeConfig, ServeSummary, Server, SharedOut};
