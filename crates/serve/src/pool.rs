//! The multi-tenant session pool: program-hash keying, LRU eviction, a
//! govern-backed resident watermark, and panic quarantine.
//!
//! The pool maps a 64-bit program hash to an entry holding the
//! program's sources (always retained — they are what quarantine and
//! re-admission rebuild from) and, while resident, a live
//! [`AnalysisSession`]. Sessions are handed out exclusively via
//! [`SessionPool::checkout`] / [`SessionPool::checkin`] because every
//! session stage accessor takes `&mut self`.
//!
//! Two pressure valves bound the fleet's footprint:
//!
//! * **Session cap** — at most `max_sessions` live sessions; beyond that
//!   the least-recently-used live session is dropped (sources stay, so a
//!   later request rebuilds it transparently).
//! * **Resident watermark** — the summed [`resident_estimate`] of live
//!   sessions is policed through govern's own machinery
//!   ([`Budget::with_resident_limit`] + [`Meter::check_now`]); while the
//!   meter reports [`ExhaustReason::Memory`], LRU sessions are evicted.
//!
//! The most-recently-used session is never evicted: a single program
//! larger than the watermark still gets served (the alternative is
//! refusing service, which the admission ladder exists to avoid).
//!
//! **Determinism invariant:** rebuilding a session from its retained
//! sources yields bit-identical query results — sessions memoise pure
//! stage artifacts of an immutable program, so eviction, quarantine, and
//! cold starts are all observationally equivalent (pinned by this
//! module's tests and the chaos suite).
//!
//! [`AnalysisSession`]: thinslice::AnalysisSession
//! [`resident_estimate`]: thinslice::AnalysisSession::resident_estimate
//! [`Budget::with_resident_limit`]: thinslice_util::Budget::with_resident_limit
//! [`Meter::check_now`]: thinslice_util::Meter::check_now
//! [`ExhaustReason::Memory`]: thinslice_util::ExhaustReason::Memory

use std::sync::Arc;

use crate::protocol::{SessionRow, SourceFile};
use thinslice::{AnalysisSession, SnapshotLoad, SnapshotStore, UpdateStats};
use thinslice_ir::CompileError;
use thinslice_pta::PtaConfig;
use thinslice_util::telemetry::{FlightKind, FlightRecorder, Telemetry};
use thinslice_util::{Budget, RunCtx};

/// The pool's 16-hex-digit program key: an order-sensitive FxHash over
/// every file name and text. Deterministic across runs and platforms.
/// Delegates to core's [`thinslice::source_hash`] so the pool key and
/// the warm-start snapshot key are the same string by construction.
pub fn program_hash(sources: &[SourceFile]) -> String {
    let refs: Vec<(&str, &str)> = sources
        .iter()
        .map(|s| (s.name.as_str(), s.text.as_str()))
        .collect();
    thinslice::source_hash(&refs)
}

/// Pool sizing knobs.
#[derive(Debug, Clone)]
pub struct PoolConfig {
    /// Maximum live sessions (≥ 1 is always kept).
    pub max_sessions: usize,
    /// Fleet-wide resident watermark in elements ([`None`] = unlimited),
    /// policed via govern's resident-limit machinery.
    pub resident_watermark: Option<usize>,
    /// Points-to configuration for every session.
    pub pta: PtaConfig,
    /// Directory of warm-start session snapshots ([`None`] disables
    /// persistence). Sessions are persisted on build, reload, eviction,
    /// and drain, keyed by content hash; a later build of the same
    /// content restores instead of recompiling.
    pub snapshot_dir: Option<String>,
}

impl Default for PoolConfig {
    fn default() -> PoolConfig {
        PoolConfig {
            max_sessions: 8,
            resident_watermark: None,
            pta: PtaConfig::default(),
            snapshot_dir: None,
        }
    }
}

/// Pool-wide counters (monotone; reported by the `status` op).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Checkouts served by a live session.
    pub hits: u64,
    /// Checkouts that had to (re)build an evicted session.
    pub misses: u64,
    /// Sessions built in total (initial + rebuilds).
    pub builds: u64,
    /// Sessions dropped by LRU/watermark pressure.
    pub evictions: u64,
    /// Sessions poisoned by a panicking query.
    pub quarantines: u64,
    /// Quarantined sessions rebuilt on their next request.
    pub rebuilds: u64,
    /// Reload ops applied (source swaps under a preserved pool key).
    pub reloads: u64,
    /// Reloads served by updating a resident session in place; the
    /// remainder had to rebuild from the new sources. The ratio is the
    /// fleet's incremental-reuse rate.
    pub reloads_incremental: u64,
    /// Session builds satisfied by a warm-start snapshot restore
    /// (a subset of `builds` — a restore still materialises a session).
    pub snapshot_hits: u64,
    /// Builds that looked for a snapshot and found no file.
    pub snapshot_misses: u64,
    /// Snapshot files persisted (build/reload/evict/drain).
    pub snapshot_writes: u64,
    /// Snapshot files found but discarded — corruption, version skew,
    /// or an integrity/config mismatch. The stale file is deleted and
    /// the session is built from sources.
    pub snapshot_discarded_corrupt: u64,
}

#[derive(Debug)]
struct PoolEntry {
    /// The immutable pool key: the hash of the sources first loaded.
    hash: String,
    /// Current sources; diverge from the originals after a reload.
    sources: Vec<SourceFile>,
    /// Hash of `sources`; equals `hash` until the first reload.
    content: String,
    session: Option<Box<AnalysisSession>>,
    resident: usize,
    last_used: u64,
    quarantined: bool,
}

/// Why a checkout failed.
#[derive(Debug)]
pub enum PoolError {
    /// The hash was never registered (or the client made it up).
    UnknownProgram,
    /// Rebuilding the session failed to compile (cannot happen for
    /// programs that registered successfully, but handled anyway).
    Compile(CompileError),
}

/// An exclusively checked-out session. Return it with
/// [`SessionPool::checkin`] — or, after a panic, [`SessionPool::quarantine`].
#[derive(Debug)]
pub struct Checkout {
    hash: String,
    /// The entry's content hash at checkout time. A checkin whose content
    /// no longer matches (a reload raced the query) drops the now-stale
    /// session instead of resurrecting it.
    content: String,
    session: Box<AnalysisSession>,
    /// Whether this checkout had to rebuild the session (eviction or
    /// quarantine), i.e. the caller is paying a cold start.
    pub rebuilt: bool,
}

impl Checkout {
    /// The program hash this session serves.
    pub fn hash(&self) -> &str {
        &self.hash
    }

    /// The session, exclusively borrowed.
    pub fn session(&mut self) -> &mut AnalysisSession {
        &mut self.session
    }
}

/// The session pool. Not internally synchronised — the server wraps it
/// in a mutex and holds the lock only around checkout/checkin, never
/// across query execution.
#[derive(Debug)]
pub struct SessionPool {
    cfg: PoolConfig,
    telemetry: Telemetry,
    /// Flight recorder for pool lifecycle events (build / evict /
    /// quarantine); [`None`] leaves the pool entirely unobserved.
    recorder: Option<Arc<FlightRecorder>>,
    /// Warm-start snapshot store; [`None`] when persistence is off.
    store: Option<SnapshotStore>,
    entries: Vec<PoolEntry>,
    clock: u64,
    /// Monotone counters; see [`PoolStats`].
    pub stats: PoolStats,
}

/// What [`SessionPool::register`] observed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegisterOutcome {
    /// The program's pool key.
    pub hash: String,
    /// Whether a live session already existed.
    pub cached: bool,
    /// The session's resident estimate after registration.
    pub resident: usize,
}

/// What [`SessionPool::reload`] did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReloadOutcome {
    /// The preserved pool key.
    pub hash: String,
    /// The hash of the entry's current (new) sources.
    pub content: String,
    /// Whether the session had to be rebuilt from scratch because it was
    /// not resident (eviction/quarantine); `stats` is zeroed then.
    pub rebuilt: bool,
    /// The session's update accounting.
    pub stats: UpdateStats,
    /// Resident estimate after the reload.
    pub resident: usize,
}

impl SessionPool {
    /// An empty pool; sessions are built under `telemetry` (disabled for
    /// a deterministic, untraced server).
    pub fn new(cfg: PoolConfig, telemetry: Telemetry) -> SessionPool {
        let store = cfg.snapshot_dir.as_ref().map(SnapshotStore::new);
        SessionPool {
            cfg,
            telemetry,
            recorder: None,
            store,
            entries: Vec::new(),
            clock: 0,
            stats: PoolStats::default(),
        }
    }

    /// Attaches (or detaches) a flight recorder; pool lifecycle events
    /// (session built / evicted / quarantined) land in its ring.
    pub fn set_recorder(&mut self, recorder: Option<Arc<FlightRecorder>>) {
        self.recorder = recorder;
    }

    fn flight(&self, kind: FlightKind, label: &str, a: u64, b: u64) {
        if let Some(rec) = &self.recorder {
            rec.record(kind, label, a, b);
        }
    }

    fn tick(&mut self) -> u64 {
        self.clock += 1;
        self.clock
    }

    fn session_ctx(&self) -> RunCtx {
        RunCtx::disabled().with_telemetry(self.telemetry.clone())
    }

    fn build_session(&self, sources: &[SourceFile]) -> Result<Box<AnalysisSession>, CompileError> {
        let refs: Vec<(&str, &str)> = sources
            .iter()
            .map(|s| (s.name.as_str(), s.text.as_str()))
            .collect();
        Ok(Box::new(AnalysisSession::with_ctx(
            &refs,
            self.cfg.pta.clone(),
            self.session_ctx(),
        )?))
    }

    /// Attempts a warm start from the snapshot keyed by content hash,
    /// counting the outcome. A corrupt or stale file is deleted so it
    /// is not re-parsed on every subsequent build.
    fn warm_start(&mut self, content: &str) -> Option<Box<AnalysisSession>> {
        let store = self.store.clone()?;
        match store.try_load(content, self.cfg.pta.clone(), self.session_ctx()) {
            SnapshotLoad::Loaded(session) => {
                self.stats.snapshot_hits += 1;
                self.flight(
                    FlightKind::SessionBuilt,
                    content,
                    session.resident_estimate() as u64,
                    2, // restored from snapshot, not compiled
                );
                Some(session)
            }
            SnapshotLoad::Missing => {
                self.stats.snapshot_misses += 1;
                None
            }
            SnapshotLoad::Discarded => {
                self.stats.snapshot_discarded_corrupt += 1;
                store.invalidate(content);
                None
            }
        }
    }

    /// Best-effort snapshot persistence; a declined or failed save is
    /// invisible to the query path.
    fn persist(&mut self, session: &AnalysisSession, content: &str) {
        if let Some(store) = &self.store {
            if store.save(session, content).is_some() {
                self.stats.snapshot_writes += 1;
            }
        }
    }

    /// Deletes the snapshot keyed `content` (a reload made it stale).
    fn invalidate_snapshot(&self, content: &str) {
        if let Some(store) = &self.store {
            store.invalidate(content);
        }
    }

    /// Persists every live session. The server calls this on drain so a
    /// restarted daemon warm-starts with all forced stages intact.
    pub fn persist_all(&mut self) {
        if self.store.is_none() {
            return;
        }
        for i in 0..self.entries.len() {
            let session = self.entries[i].session.take();
            let content = self.entries[i].content.clone();
            if let Some(s) = &session {
                self.persist(s, &content);
            }
            self.entries[i].session = session;
        }
    }

    fn find(&self, hash: &str) -> Option<usize> {
        self.entries.iter().position(|e| e.hash == hash)
    }

    /// Registers a program, building its session eagerly so compile
    /// errors surface on `load`, not on the first query. Re-registering
    /// a program whose session is still live is a cheap cache hit.
    ///
    /// # Errors
    ///
    /// Returns the frontend's [`CompileError`] for invalid sources (the
    /// pool is left unchanged).
    pub fn register(&mut self, sources: Vec<SourceFile>) -> Result<RegisterOutcome, CompileError> {
        let hash = program_hash(&sources);
        if let Some(i) = self.find(&hash) {
            if self.entries[i].session.is_some() {
                self.stats.hits += 1;
                let now = self.tick();
                let e = &mut self.entries[i];
                e.last_used = now;
                return Ok(RegisterOutcome {
                    hash,
                    cached: true,
                    resident: e.resident,
                });
            }
            // Known program, evicted or quarantined session: fall through
            // to checkout's rebuild path.
            let mut co = self.checkout(&hash).map_err(|e| match e {
                PoolError::Compile(c) => c,
                PoolError::UnknownProgram => unreachable!("entry exists"),
            })?;
            let resident = co.session().resident_estimate();
            self.checkin(co);
            return Ok(RegisterOutcome {
                hash,
                cached: false,
                resident,
            });
        }
        let session = match self.warm_start(&hash) {
            Some(session) => session,
            None => {
                let session = self.build_session(&sources)?;
                self.flight(
                    FlightKind::SessionBuilt,
                    &hash,
                    session.resident_estimate() as u64,
                    0,
                );
                self.persist(&session, &hash);
                session
            }
        };
        self.stats.builds += 1;
        self.stats.misses += 1;
        let resident = session.resident_estimate();
        let now = self.tick();
        self.entries.push(PoolEntry {
            hash: hash.clone(),
            content: hash.clone(),
            sources,
            session: Some(session),
            resident,
            last_used: now,
            quarantined: false,
        });
        self.enforce_limits();
        Ok(RegisterOutcome {
            hash,
            cached: false,
            resident,
        })
    }

    /// Whether `hash` names a registered program (live or not).
    pub fn contains(&self, hash: &str) -> bool {
        self.find(hash).is_some()
    }

    /// Exclusively checks out the session for `hash`, transparently
    /// rebuilding it from retained sources after an eviction or a
    /// quarantine.
    ///
    /// # Errors
    ///
    /// [`PoolError::UnknownProgram`] for unregistered hashes;
    /// [`PoolError::Compile`] if a rebuild fails to compile.
    pub fn checkout(&mut self, hash: &str) -> Result<Checkout, PoolError> {
        let i = self.find(hash).ok_or(PoolError::UnknownProgram)?;
        let now = self.tick();
        if let Some(session) = self.entries[i].session.take() {
            self.stats.hits += 1;
            self.entries[i].last_used = now;
            return Ok(Checkout {
                hash: hash.to_string(),
                content: self.entries[i].content.clone(),
                session,
                rebuilt: false,
            });
        }
        let was_quarantined = self.entries[i].quarantined;
        let content = self.entries[i].content.clone();
        let session = match self.warm_start(&content) {
            Some(session) => session,
            None => {
                let session = self
                    .build_session(&self.entries[i].sources)
                    .map_err(PoolError::Compile)?;
                self.flight(
                    FlightKind::SessionBuilt,
                    hash,
                    session.resident_estimate() as u64,
                    u64::from(was_quarantined),
                );
                self.persist(&session, &content);
                session
            }
        };
        self.stats.builds += 1;
        if was_quarantined {
            self.stats.rebuilds += 1;
        } else {
            self.stats.misses += 1;
        }
        let e = &mut self.entries[i];
        e.quarantined = false;
        e.last_used = now;
        Ok(Checkout {
            hash: hash.to_string(),
            content: e.content.clone(),
            session,
            rebuilt: true,
        })
    }

    /// Swaps a registered program's sources under its existing pool key,
    /// incrementally updating the resident session (or rebuilding from
    /// the new sources when the session is evicted or quarantined).
    ///
    /// The pool key — and therefore every client-held program handle —
    /// survives the reload; only the reported content hash changes.
    ///
    /// # Errors
    ///
    /// [`PoolError::UnknownProgram`] for unregistered keys;
    /// [`PoolError::Compile`] for invalid new sources (the entry, its
    /// previous sources, and any resident session are left untouched).
    pub fn reload(
        &mut self,
        hash: &str,
        new_sources: Vec<SourceFile>,
    ) -> Result<ReloadOutcome, PoolError> {
        let i = self.find(hash).ok_or(PoolError::UnknownProgram)?;
        let content = program_hash(&new_sources);
        let now = self.tick();
        if let Some(mut session) = self.entries[i].session.take() {
            let refs: Vec<(&str, &str)> = new_sources
                .iter()
                .map(|s| (s.name.as_str(), s.text.as_str()))
                .collect();
            match session.update(&refs) {
                Ok(stats) => {
                    let resident = session.resident_estimate();
                    // The on-disk snapshot of the old sources is stale
                    // the moment the reload lands; replace it with one
                    // for the new content.
                    let stale = self.entries[i].content.clone();
                    if stale != content {
                        self.invalidate_snapshot(&stale);
                    }
                    self.persist(&session, &content);
                    let e = &mut self.entries[i];
                    e.session = Some(session);
                    e.sources = new_sources;
                    e.content = content.clone();
                    e.resident = resident;
                    e.last_used = now;
                    self.stats.reloads += 1;
                    self.stats.reloads_incremental += 1;
                    self.flight(
                        FlightKind::SessionUpdated,
                        hash,
                        stats.methods_changed as u64,
                        u64::from(stats.any_reuse()),
                    );
                    self.enforce_limits();
                    Ok(ReloadOutcome {
                        hash: hash.to_string(),
                        content,
                        rebuilt: false,
                        stats,
                        resident,
                    })
                }
                Err(err) => {
                    // update() leaves the session untouched on a compile
                    // error; restore it and report.
                    let e = &mut self.entries[i];
                    e.session = Some(session);
                    e.last_used = now;
                    Err(PoolError::Compile(err))
                }
            }
        } else {
            // Evicted or quarantined: build directly from the new sources.
            let session = match self.warm_start(&content) {
                Some(session) => session,
                None => {
                    let session = self
                        .build_session(&new_sources)
                        .map_err(PoolError::Compile)?;
                    self.persist(&session, &content);
                    session
                }
            };
            self.stats.builds += 1;
            let stale = self.entries[i].content.clone();
            if stale != content {
                self.invalidate_snapshot(&stale);
            }
            let resident = session.resident_estimate();
            let e = &mut self.entries[i];
            e.session = Some(session);
            e.sources = new_sources;
            e.content = content.clone();
            e.resident = resident;
            e.quarantined = false;
            e.last_used = now;
            self.stats.reloads += 1;
            self.flight(FlightKind::SessionUpdated, hash, 0, 0);
            self.enforce_limits();
            Ok(ReloadOutcome {
                hash: hash.to_string(),
                content,
                rebuilt: true,
                stats: UpdateStats::default(),
                resident,
            })
        }
    }

    /// Returns a checked-out session, refreshing its resident estimate
    /// (queries may have materialised more stages) and re-enforcing the
    /// session cap and watermark.
    pub fn checkin(&mut self, co: Checkout) {
        let Some(i) = self.find(&co.hash) else {
            // The entry vanished (cannot happen today — entries are never
            // removed); drop the session rather than resurrect it.
            return;
        };
        if self.entries[i].content != co.content {
            // A reload swapped the sources while this session was out:
            // the session answers the old program, so drop it instead of
            // clobbering the reloaded one.
            return;
        }
        let now = self.tick();
        let e = &mut self.entries[i];
        e.resident = co.session.resident_estimate();
        e.session = Some(co.session);
        e.last_used = now;
        self.enforce_limits();
    }

    /// Quarantines a poisoned session: the artifacts are dropped on the
    /// spot (a panicking query may have left scratch state inconsistent)
    /// and the entry is marked so the next checkout counts as a rebuild.
    pub fn quarantine(&mut self, co: Checkout) {
        self.stats.quarantines += 1;
        self.flight(FlightKind::SessionQuarantined, &co.hash, 0, 0);
        if let Some(i) = self.find(&co.hash) {
            let e = &mut self.entries[i];
            if e.content == co.content {
                e.quarantined = true;
                e.resident = 0;
                e.session = None;
            }
            // Else a reload already replaced this session; the poisoned
            // one just gets dropped.
        }
        drop(co);
    }

    /// Live (resident) session count.
    pub fn live_sessions(&self) -> usize {
        self.entries.iter().filter(|e| e.session.is_some()).count()
    }

    /// Registered program count (live or not).
    pub fn programs(&self) -> usize {
        self.entries.len()
    }

    /// Currently-quarantined program count.
    pub fn quarantined(&self) -> usize {
        self.entries.iter().filter(|e| e.quarantined).count()
    }

    /// Summed resident estimate of live sessions, in elements.
    pub fn resident_total(&self) -> usize {
        self.entries.iter().map(|e| e.resident).sum()
    }

    /// The configured session cap.
    pub fn capacity(&self) -> usize {
        self.cfg.max_sessions.max(1)
    }

    /// One [`SessionRow`] per registered program, in hash order, with
    /// residency state and the live session's cumulative memo counters
    /// (zero while evicted, quarantined, or checked out — memo state
    /// travels with the session). Latency quantiles are the server's to
    /// fill in; the pool does not observe wall-clock time.
    pub fn session_rows(&self) -> Vec<SessionRow> {
        let mut rows: Vec<SessionRow> = self
            .entries
            .iter()
            .map(|e| {
                let memo = e
                    .session
                    .as_ref()
                    .map(|s| s.memo_stats())
                    .unwrap_or_default();
                SessionRow {
                    program: e.hash.clone(),
                    content: e.content.clone(),
                    live: e.session.is_some(),
                    quarantined: e.quarantined,
                    resident: e.resident,
                    exit_hits: memo.exit_hits,
                    exit_misses: memo.exit_misses,
                    shared_hits: memo.shared_hits,
                    latency_us: Default::default(),
                }
            })
            .collect();
        rows.sort_by(|a, b| a.program.cmp(&b.program));
        rows
    }

    /// Drops the least-recently-used live session (never the
    /// most-recently-used one). Returns whether anything was evicted.
    fn evict_lru(&mut self) -> bool {
        if self.live_sessions() <= 1 {
            return false;
        }
        let victim = self
            .entries
            .iter()
            .enumerate()
            .filter(|(_, e)| e.session.is_some())
            .min_by_key(|(_, e)| e.last_used)
            .map(|(i, _)| i);
        let Some(i) = victim else { return false };
        // Persist the victim's forced stages before dropping them, so a
        // later checkout restores instead of recompiling.
        let session = self.entries[i].session.take();
        let content = self.entries[i].content.clone();
        if let Some(s) = &session {
            self.persist(s, &content);
        }
        drop(session);
        let (hash, resident) = {
            let e = &mut self.entries[i];
            let r = e.resident;
            e.resident = 0;
            (e.hash.clone(), r)
        };
        self.stats.evictions += 1;
        self.flight(FlightKind::SessionEvicted, &hash, resident as u64, 0);
        true
    }

    /// Applies both pressure valves; called after every build/checkin.
    fn enforce_limits(&mut self) {
        while self.live_sessions() > self.cfg.max_sessions.max(1) {
            if !self.evict_lru() {
                break;
            }
        }
        let Some(watermark) = self.cfg.resident_watermark else {
            return;
        };
        // Reuse govern's watermark machinery verbatim: arm a resident-
        // limited budget and ask for an immediate check. Exhaustion is
        // sticky per meter, so each round arms afresh.
        loop {
            let mut meter = Budget::default().with_resident_limit(watermark).meter();
            if meter.check_now(self.resident_total()) {
                return;
            }
            if !self.evict_lru() {
                return; // only the MRU session left; keep serving it
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn src(name: &str, body: &str) -> Vec<SourceFile> {
        vec![SourceFile {
            name: name.to_string(),
            text: body.to_string(),
        }]
    }

    fn program(n: u32) -> Vec<SourceFile> {
        src(
            &format!("p{n}.mj"),
            &format!(
                "class Main {{ static void main() {{\nint x = {n};\nint y = x + 1;\nprint(y);\n}} }}"
            ),
        )
    }

    #[test]
    fn hash_is_deterministic_and_content_sensitive() {
        assert_eq!(program_hash(&program(1)), program_hash(&program(1)));
        assert_ne!(program_hash(&program(1)), program_hash(&program(2)));
        assert_eq!(program_hash(&program(7)).len(), 16);
    }

    #[test]
    fn register_caches_live_sessions() {
        let mut pool = SessionPool::new(PoolConfig::default(), Telemetry::disabled());
        let a = pool.register(program(1)).unwrap();
        assert!(!a.cached);
        let b = pool.register(program(1)).unwrap();
        assert!(b.cached);
        assert_eq!(a.hash, b.hash);
        assert_eq!(pool.live_sessions(), 1);
        assert_eq!(pool.stats.builds, 1);
    }

    #[test]
    fn compile_errors_leave_the_pool_unchanged() {
        let mut pool = SessionPool::new(PoolConfig::default(), Telemetry::disabled());
        assert!(pool.register(src("bad.mj", "class {{{")).is_err());
        assert_eq!(pool.programs(), 0);
        assert_eq!(pool.live_sessions(), 0);
    }

    #[test]
    fn session_cap_evicts_lru_and_rebuilds_transparently() {
        let mut pool = SessionPool::new(
            PoolConfig {
                max_sessions: 2,
                ..PoolConfig::default()
            },
            Telemetry::disabled(),
        );
        let h1 = pool.register(program(1)).unwrap().hash;
        let h2 = pool.register(program(2)).unwrap().hash;
        pool.register(program(3)).unwrap();
        assert_eq!(pool.live_sessions(), 2);
        assert_eq!(pool.stats.evictions, 1);
        // Program 1 was the LRU victim; 2 survived.
        let co = pool.checkout(&h2).unwrap();
        assert!(!co.rebuilt);
        pool.checkin(co);
        let co = pool.checkout(&h1).unwrap();
        assert!(co.rebuilt, "evicted session rebuilds on demand");
        pool.checkin(co);
    }

    #[test]
    fn watermark_pressure_evicts_down_to_mru() {
        // Tiny watermark: no two sessions fit, but the MRU one is kept.
        let mut pool = SessionPool::new(
            PoolConfig {
                max_sessions: 8,
                resident_watermark: Some(1),
                ..PoolConfig::default()
            },
            Telemetry::disabled(),
        );
        pool.register(program(1)).unwrap();
        pool.register(program(2)).unwrap();
        pool.register(program(3)).unwrap();
        assert_eq!(pool.live_sessions(), 1, "watermark holds one survivor");
        assert_eq!(pool.stats.evictions, 2);
        assert!(pool.resident_total() > 1, "MRU kept even over watermark");
    }

    #[test]
    fn unknown_hash_is_an_error() {
        let mut pool = SessionPool::new(PoolConfig::default(), Telemetry::disabled());
        assert!(matches!(
            pool.checkout("ffffffffffffffff"),
            Err(PoolError::UnknownProgram)
        ));
    }

    fn main_with(n: u32) -> Vec<SourceFile> {
        src(
            "m.mj",
            &format!(
                "class Main {{ static void main() {{\nint x = {n};\nint y = x + 1;\nprint(y);\n}} }}"
            ),
        )
    }

    fn slice_line_2(pool: &mut SessionPool, hash: &str) -> Vec<String> {
        let mut co = pool.checkout(hash).unwrap();
        let s = co.session();
        let seeds = s.seed_at_line("m.mj", 4).unwrap();
        let r = s.query(&thinslice::Query::new(
            seeds,
            thinslice::SliceKind::Thin,
            thinslice::Engine::Ci,
        ));
        let out = r
            .stmts
            .in_order()
            .iter()
            .map(|st| format!("{st:?}"))
            .collect();
        pool.checkin(co);
        out
    }

    #[test]
    fn reload_updates_in_place_under_the_same_key() {
        let mut pool = SessionPool::new(PoolConfig::default(), Telemetry::disabled());
        let h = pool.register(main_with(1)).unwrap().hash;
        // Warm the lazy stages so the reload has something to reuse.
        slice_line_2(&mut pool, &h);
        let out = pool.reload(&h, main_with(2)).unwrap();
        assert_eq!(out.hash, h, "pool key lineage preserved");
        assert_ne!(out.content, h, "content hash tracks the new sources");
        assert_eq!(out.content, program_hash(&main_with(2)));
        assert!(!out.rebuilt);
        assert!(!out.stats.structural, "int tweak is a body-only edit");
        assert!(out.stats.pta_reused, "constant edits keep the solver");
        assert_eq!((pool.stats.reloads, pool.stats.reloads_incremental), (1, 1));
        // The row exposes both hashes.
        let rows = pool.session_rows();
        assert_eq!(rows[0].program, h);
        assert_eq!(rows[0].content, out.content);
        // Bit-identity: the reloaded session answers like a fresh pool.
        let mut fresh = SessionPool::new(PoolConfig::default(), Telemetry::disabled());
        let fh = fresh.register(main_with(2)).unwrap().hash;
        assert_eq!(slice_line_2(&mut pool, &h), slice_line_2(&mut fresh, &fh));
    }

    #[test]
    fn reload_of_nonresident_session_rebuilds_from_new_sources() {
        let mut pool = SessionPool::new(PoolConfig::default(), Telemetry::disabled());
        let h = pool.register(main_with(1)).unwrap().hash;
        let co = pool.checkout(&h).unwrap();
        pool.quarantine(co);
        let out = pool.reload(&h, main_with(2)).unwrap();
        assert!(out.rebuilt);
        assert_eq!(out.stats, thinslice::UpdateStats::default());
        assert_eq!(pool.quarantined(), 0, "reload clears quarantine");
        assert_eq!((pool.stats.reloads, pool.stats.reloads_incremental), (1, 0));
        let mut fresh = SessionPool::new(PoolConfig::default(), Telemetry::disabled());
        let fh = fresh.register(main_with(2)).unwrap().hash;
        assert_eq!(slice_line_2(&mut pool, &h), slice_line_2(&mut fresh, &fh));
    }

    #[test]
    fn reload_errors_leave_the_entry_untouched() {
        let mut pool = SessionPool::new(PoolConfig::default(), Telemetry::disabled());
        assert!(matches!(
            pool.reload("ffffffffffffffff", main_with(1)),
            Err(PoolError::UnknownProgram)
        ));
        let h = pool.register(main_with(1)).unwrap().hash;
        assert!(matches!(
            pool.reload(&h, src("m.mj", "class Broken {")),
            Err(PoolError::Compile(_))
        ));
        assert_eq!(pool.stats.reloads, 0);
        let rows = pool.session_rows();
        assert_eq!(rows[0].content, h, "content hash unchanged on failure");
        // Still serves the original program.
        let mut fresh = SessionPool::new(PoolConfig::default(), Telemetry::disabled());
        let fh = fresh.register(main_with(1)).unwrap().hash;
        assert_eq!(slice_line_2(&mut pool, &h), slice_line_2(&mut fresh, &fh));
    }

    #[test]
    fn checkin_after_a_racing_reload_drops_the_stale_session() {
        let mut pool = SessionPool::new(PoolConfig::default(), Telemetry::disabled());
        let h = pool.register(main_with(1)).unwrap().hash;
        let co = pool.checkout(&h).unwrap();
        // Reload lands while the session is out: rebuild path.
        let out = pool.reload(&h, main_with(2)).unwrap();
        assert!(out.rebuilt);
        // The stale (v1) session must not clobber the reloaded (v2) one.
        pool.checkin(co);
        let mut fresh = SessionPool::new(PoolConfig::default(), Telemetry::disabled());
        let fh = fresh.register(main_with(2)).unwrap().hash;
        assert_eq!(slice_line_2(&mut pool, &h), slice_line_2(&mut fresh, &fh));
    }

    /// A fresh scratch directory for one test's snapshot store.
    fn snap_dir(test: &str) -> String {
        let dir = std::env::temp_dir().join(format!("ts_pool_{test}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir.to_string_lossy().into_owned()
    }

    fn snap_pool(dir: &str) -> SessionPool {
        SessionPool::new(
            PoolConfig {
                snapshot_dir: Some(dir.to_string()),
                ..PoolConfig::default()
            },
            Telemetry::disabled(),
        )
    }

    #[test]
    fn snapshot_survives_pool_restart() {
        let dir = snap_dir("restart");
        let mut pool = snap_pool(&dir);
        let h = pool.register(main_with(1)).unwrap().hash;
        let expected = slice_line_2(&mut pool, &h);
        assert_eq!(pool.stats.snapshot_misses, 1, "cold build misses");
        assert_eq!(pool.stats.snapshot_writes, 1, "persisted on build");
        pool.persist_all();
        assert!(pool.stats.snapshot_writes >= 2, "drain re-persists");

        // A brand-new pool (a restarted daemon) warm-starts on load.
        let mut pool2 = snap_pool(&dir);
        let out = pool2.register(main_with(1)).unwrap();
        assert_eq!(out.hash, h);
        assert_eq!(pool2.stats.snapshot_hits, 1, "restored, not compiled");
        assert_eq!(pool2.stats.builds, 1, "a restore still counts as a build");
        assert_eq!(slice_line_2(&mut pool2, &h), expected, "bit-identical");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn snapshot_warm_starts_evicted_sessions() {
        let dir = snap_dir("evict");
        let mut pool = SessionPool::new(
            PoolConfig {
                max_sessions: 1,
                snapshot_dir: Some(dir.clone()),
                ..PoolConfig::default()
            },
            Telemetry::disabled(),
        );
        let h = pool.register(main_with(1)).unwrap().hash;
        let expected = slice_line_2(&mut pool, &h);
        // Evict program 1; eviction persists its forced stages.
        pool.register(program(2)).unwrap();
        assert_eq!(pool.stats.evictions, 1);
        let writes = pool.stats.snapshot_writes;
        assert!(writes >= 2, "build + evict both persisted");
        // The rebuild restores from disk instead of recompiling, with
        // the evicted session's forced stages intact.
        assert_eq!(slice_line_2(&mut pool, &h), expected);
        assert_eq!(pool.stats.snapshot_hits, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn reload_invalidates_the_stale_snapshot() {
        let dir = snap_dir("reload");
        let mut pool = snap_pool(&dir);
        let h = pool.register(main_with(1)).unwrap().hash;
        slice_line_2(&mut pool, &h);
        let store = SnapshotStore::new(&dir);
        assert!(
            store.path(&h).exists(),
            "build persisted under content hash"
        );
        let out = pool.reload(&h, main_with(2)).unwrap();
        assert!(
            !store.path(&h).exists(),
            "reload deletes the superseded snapshot"
        );
        assert!(
            store.path(&out.content).exists(),
            "and persists one for the new content"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_snapshot_is_discarded_and_rebuilt() {
        let dir = snap_dir("corrupt");
        let mut pool = snap_pool(&dir);
        let h = pool.register(main_with(1)).unwrap().hash;
        let expected = slice_line_2(&mut pool, &h);
        // Flip a byte in the middle of the persisted file.
        let path = SnapshotStore::new(&dir).path(&h);
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();

        let mut pool2 = snap_pool(&dir);
        pool2.register(main_with(1)).unwrap();
        assert_eq!(pool2.stats.snapshot_discarded_corrupt, 1);
        assert_eq!(pool2.stats.snapshot_hits, 0);
        assert_eq!(
            slice_line_2(&mut pool2, &h),
            expected,
            "rebuilt from sources"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn quarantine_then_checkout_rebuilds() {
        let mut pool = SessionPool::new(PoolConfig::default(), Telemetry::disabled());
        let h = pool.register(program(1)).unwrap().hash;
        let co = pool.checkout(&h).unwrap();
        pool.quarantine(co);
        assert_eq!(pool.quarantined(), 1);
        assert_eq!(pool.live_sessions(), 0);
        let co = pool.checkout(&h).unwrap();
        assert!(co.rebuilt);
        pool.checkin(co);
        assert_eq!(pool.quarantined(), 0);
        assert_eq!(pool.stats.quarantines, 1);
        assert_eq!(pool.stats.rebuilds, 1);
    }
}
