//! The line-delimited JSON request/response protocol.
//!
//! One request per line, one response line per request. Requests are
//! essentially a [`Query`] plus a program reference; responses carry the
//! schema tag [`RESPONSE_SCHEMA`] and — for traced status requests — embed
//! a full `thinslice.run_report.v1` report.
//!
//! Hardening contract: **every** malformed input becomes a structured
//! error response, never a disconnect or a panic. [`parse_request`] is a
//! total function over arbitrary bytes-as-UTF-8; its error carries the
//! request `id` whenever one could still be extracted, so clients can
//! correlate failures.
//!
//! Response serialization is deterministic: fixed key order, no
//! timestamps, no latencies. That is what lets the chaos suite assert
//! that non-faulted responses are bit-identical between a faulted and a
//! fault-free run. (Wall-clock figures belong in telemetry reports, not
//! in slice responses.)
//!
//! # Examples
//!
//! ```
//! use thinslice_serve::protocol::{parse_request, Op};
//!
//! let req = parse_request(
//!     r#"{"op":"slice","id":7,"program":"deadbeefdeadbeef",
//!        "seed":{"file":"t.mj","line":3}}"#,
//! )
//! .unwrap();
//! assert_eq!(req.id, Some(7));
//! assert!(matches!(req.op, Op::Slice(_)));
//!
//! let err = parse_request("{not json").unwrap_err();
//! assert_eq!(err.code, "parse");
//! ```
//!
//! [`Query`]: thinslice::Query

use std::fmt::Write as _;

use thinslice::{Engine, SliceKind, UpdateStats};
use thinslice_util::govern::Completeness;
use thinslice_util::telemetry::{FlightEvent, HistogramSummary, Json, RUN_REPORT_SCHEMA};

/// Schema tag carried by every response line.
pub const RESPONSE_SCHEMA: &str = "thinslice.serve_response.v1";

/// Schema tag of the observability document embedded in a `stats`
/// response (and accepted standalone by `validate-report`).
pub const SERVE_STATS_SCHEMA: &str = "thinslice.serve_stats.v1";

/// Hard cap on one request line; longer lines are answered with a
/// `too_large` error without being parsed.
pub const MAX_LINE_BYTES: usize = 8 * 1024 * 1024;

/// One named source file of a program.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct SourceFile {
    /// File name as referenced by seeds (`"t.mj"`).
    pub name: String,
    /// Full source text.
    pub text: String,
}

/// How a slice request names its program: inline sources (registered on
/// first use) or the hash returned by an earlier `load`.
#[derive(Debug, Clone)]
pub enum ProgramRef {
    /// Sources carried in the request itself.
    Inline(Vec<SourceFile>),
    /// The 16-hex-digit program hash from a `load` response.
    Hash(String),
}

/// A seed position: every non-synthetic statement on that source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SeedRef {
    /// Source file name.
    pub file: String,
    /// 1-based line number.
    pub line: u32,
}

/// The slice-query payload of a `slice` request.
#[derive(Debug, Clone)]
pub struct SliceRequest {
    /// The program to slice.
    pub program: ProgramRef,
    /// Seed positions (at least one).
    pub seeds: Vec<SeedRef>,
    /// Slice kind (default thin).
    pub kind: SliceKind,
    /// Requested engine (default CI); admission control may degrade CS
    /// to CI under load.
    pub engine: Engine,
    /// Per-request wall-clock deadline in milliseconds.
    pub deadline_ms: Option<u64>,
    /// Per-request step quota.
    pub step_budget: Option<u64>,
    /// Whether a budget-exhausted CS query degrades to CI (default true).
    pub degrade: bool,
    /// Deterministic fault injection: panic this many times before
    /// succeeding. Only honoured by a server started in chaos mode.
    pub chaos_panics: u32,
}

/// A parsed request operation.
#[derive(Debug, Clone)]
pub enum Op {
    /// Register a program; responds with its hash.
    Load {
        /// The program's source files (at least one).
        sources: Vec<SourceFile>,
    },
    /// Answer a slice query.
    Slice(SliceRequest),
    /// Swap a registered program's sources in place, incrementally
    /// re-analysing the resident session. The pool key (`program`) is
    /// preserved — the entry's lineage continues — while the reported
    /// `content` hash tracks the current sources.
    Reload {
        /// The pool key from the original `load`.
        program: String,
        /// The edited source files (at least one).
        sources: Vec<SourceFile>,
    },
    /// Report pool/served counters (and a run report when tracing).
    Status,
    /// Report the live observability plane: per-tenant tables, histogram
    /// quantiles, slow-query log, and the flight-recorder tail.
    Stats,
    /// Drain all queued queries, answer them, acknowledge, exit.
    Shutdown,
}

/// One parsed request line.
#[derive(Debug, Clone)]
pub struct Request {
    /// Client-chosen correlation id, echoed in the response.
    pub id: Option<u64>,
    /// Tenant name for fair scheduling and per-client budgets.
    pub client: String,
    /// The operation.
    pub op: Op,
}

/// A structured request error: always answered, never a disconnect.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RequestError {
    /// The request id, when it could still be extracted.
    pub id: Option<u64>,
    /// Stable machine-readable code (`parse`, `protocol`, `too_large`…).
    pub code: &'static str,
    /// Human-readable detail naming the offending token.
    pub message: String,
}

impl RequestError {
    fn new(id: Option<u64>, code: &'static str, message: impl Into<String>) -> RequestError {
        RequestError {
            id,
            code,
            message: message.into(),
        }
    }
}

fn str_field(v: &Json, id: Option<u64>, key: &str) -> Result<String, RequestError> {
    match v.get(key) {
        Some(Json::Str(s)) => Ok(s.clone()),
        Some(other) => Err(RequestError::new(
            id,
            "protocol",
            format!("field \"{key}\" must be a string, got {other:?}"),
        )),
        None => Err(RequestError::new(
            id,
            "protocol",
            format!("missing required field \"{key}\""),
        )),
    }
}

fn opt_u64_field(v: &Json, id: Option<u64>, key: &str) -> Result<Option<u64>, RequestError> {
    match v.get(key) {
        None => Ok(None),
        Some(j) => j.as_u64().map(Some).ok_or_else(|| {
            RequestError::new(
                id,
                "protocol",
                format!("field \"{key}\" must be a non-negative integer, got {j:?}"),
            )
        }),
    }
}

fn parse_sources(v: &Json, id: Option<u64>) -> Result<Vec<SourceFile>, RequestError> {
    let arr = match v.get("sources") {
        Some(Json::Arr(items)) => items,
        Some(other) => {
            return Err(RequestError::new(
                id,
                "protocol",
                format!("field \"sources\" must be an array, got {other:?}"),
            ))
        }
        None => {
            return Err(RequestError::new(
                id,
                "protocol",
                "missing required field \"sources\"",
            ))
        }
    };
    if arr.is_empty() {
        return Err(RequestError::new(id, "protocol", "\"sources\" is empty"));
    }
    arr.iter()
        .map(|item| {
            Ok(SourceFile {
                name: str_field(item, id, "name")?,
                text: str_field(item, id, "text")?,
            })
        })
        .collect()
}

fn parse_seed_obj(item: &Json, id: Option<u64>) -> Result<SeedRef, RequestError> {
    let file = str_field(item, id, "file")?;
    let line = match item.get("line").and_then(Json::as_u64) {
        Some(n) if n >= 1 && n <= u64::from(u32::MAX) => n as u32,
        _ => {
            return Err(RequestError::new(
                id,
                "protocol",
                format!(
                    "seed \"line\" must be a positive integer, got {:?}",
                    item.get("line")
                ),
            ))
        }
    };
    Ok(SeedRef { file, line })
}

fn parse_slice(v: &Json, id: Option<u64>) -> Result<SliceRequest, RequestError> {
    let program = match (v.get("program"), v.get("sources")) {
        (Some(_), Some(_)) => {
            return Err(RequestError::new(
                id,
                "protocol",
                "give either \"program\" or \"sources\", not both",
            ))
        }
        (Some(Json::Str(h)), None) => ProgramRef::Hash(h.clone()),
        (Some(other), None) => {
            return Err(RequestError::new(
                id,
                "protocol",
                format!("field \"program\" must be a string hash, got {other:?}"),
            ))
        }
        (None, Some(_)) => ProgramRef::Inline(parse_sources(v, id)?),
        (None, None) => {
            return Err(RequestError::new(
                id,
                "protocol",
                "slice needs a \"program\" hash or inline \"sources\"",
            ))
        }
    };

    let mut seeds = Vec::new();
    match (v.get("seed"), v.get("seeds")) {
        (Some(_), Some(_)) => {
            return Err(RequestError::new(
                id,
                "protocol",
                "give either \"seed\" or \"seeds\", not both",
            ))
        }
        (Some(s), None) => seeds.push(parse_seed_obj(s, id)?),
        (None, Some(Json::Arr(items))) if !items.is_empty() => {
            for item in items {
                seeds.push(parse_seed_obj(item, id)?);
            }
        }
        (None, Some(other)) => {
            return Err(RequestError::new(
                id,
                "protocol",
                format!("field \"seeds\" must be a non-empty array, got {other:?}"),
            ))
        }
        (None, None) => {
            return Err(RequestError::new(
                id,
                "protocol",
                "slice needs a \"seed\" or \"seeds\"",
            ))
        }
    }

    let kind = match v.get("kind") {
        None => SliceKind::Thin,
        Some(Json::Str(s)) => match s.as_str() {
            "thin" => SliceKind::Thin,
            "data" => SliceKind::TraditionalData,
            "full" => SliceKind::TraditionalFull,
            other => {
                return Err(RequestError::new(
                    id,
                    "protocol",
                    format!("unknown kind \"{other}\" (expected thin|data|full)"),
                ))
            }
        },
        Some(other) => {
            return Err(RequestError::new(
                id,
                "protocol",
                format!("field \"kind\" must be a string, got {other:?}"),
            ))
        }
    };
    let engine = match v.get("engine") {
        None => Engine::Ci,
        Some(Json::Str(s)) => match s.as_str() {
            "ci" => Engine::Ci,
            "cs" => Engine::Cs,
            other => {
                return Err(RequestError::new(
                    id,
                    "protocol",
                    format!("unknown engine \"{other}\" (expected ci|cs)"),
                ))
            }
        },
        Some(other) => {
            return Err(RequestError::new(
                id,
                "protocol",
                format!("field \"engine\" must be a string, got {other:?}"),
            ))
        }
    };
    let degrade = match v.get("degrade") {
        None => true,
        Some(Json::Bool(b)) => *b,
        Some(other) => {
            return Err(RequestError::new(
                id,
                "protocol",
                format!("field \"degrade\" must be a boolean, got {other:?}"),
            ))
        }
    };
    let chaos_panics = match v.get("chaos") {
        None => 0,
        Some(c) => opt_u64_field(c, id, "panics")?
            .unwrap_or(0)
            .min(u64::from(u32::MAX)) as u32,
    };
    Ok(SliceRequest {
        program,
        seeds,
        kind,
        engine,
        deadline_ms: opt_u64_field(v, id, "deadline_ms")?,
        step_budget: opt_u64_field(v, id, "step_budget")?,
        degrade,
        chaos_panics,
    })
}

/// Parses one request line. Total over arbitrary input: every failure is
/// a [`RequestError`] carrying a stable code, a message naming the
/// offending token, and the request id when one could be extracted.
pub fn parse_request(line: &str) -> Result<Request, RequestError> {
    if line.len() > MAX_LINE_BYTES {
        return Err(RequestError::new(
            None,
            "too_large",
            format!(
                "request line is {} bytes (limit {MAX_LINE_BYTES})",
                line.len()
            ),
        ));
    }
    let v = Json::parse(line)
        .map_err(|e| RequestError::new(None, "parse", format!("malformed JSON: {e}")))?;
    if v.as_obj().is_none() {
        return Err(RequestError::new(
            None,
            "protocol",
            format!("request must be a JSON object, got {v:?}"),
        ));
    }
    let id = match v.get("id") {
        None | Some(Json::Null) => None,
        Some(j) => Some(j.as_u64().ok_or_else(|| {
            RequestError::new(
                None,
                "protocol",
                format!("field \"id\" must be a non-negative integer, got {j:?}"),
            )
        })?),
    };
    let client = match v.get("client") {
        None => "anon".to_string(),
        Some(Json::Str(s)) => s.clone(),
        Some(other) => {
            return Err(RequestError::new(
                id,
                "protocol",
                format!("field \"client\" must be a string, got {other:?}"),
            ))
        }
    };
    let op = match str_field(&v, id, "op")?.as_str() {
        "load" => Op::Load {
            sources: parse_sources(&v, id)?,
        },
        "slice" => Op::Slice(parse_slice(&v, id)?),
        "reload" => Op::Reload {
            program: str_field(&v, id, "program")?,
            sources: parse_sources(&v, id)?,
        },
        "status" => Op::Status,
        "stats" => Op::Stats,
        "shutdown" => Op::Shutdown,
        other => {
            return Err(RequestError::new(
                id,
                "protocol",
                format!(
                    "unknown op \"{other}\" (expected load|slice|reload|status|stats|shutdown)"
                ),
            ))
        }
    };
    Ok(Request { id, client, op })
}

// ---- response serialization ----

/// The protocol spelling of an engine.
pub fn engine_str(e: Engine) -> &'static str {
    match e {
        Engine::Ci => "ci",
        Engine::Cs => "cs",
    }
}

/// The protocol spelling of a slice kind.
pub fn kind_str(k: SliceKind) -> &'static str {
    match k {
        SliceKind::Thin => "thin",
        SliceKind::TraditionalData => "data",
        SliceKind::TraditionalFull => "full",
    }
}

fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn id_json(id: Option<u64>) -> String {
    match id {
        Some(n) => n.to_string(),
        None => "null".to_string(),
    }
}

fn head(id: Option<u64>, ok: bool, op: Option<&str>) -> String {
    let mut s = format!(
        "{{\"schema\":{},\"id\":{},\"ok\":{}",
        esc(RESPONSE_SCHEMA),
        id_json(id),
        ok
    );
    if let Some(op) = op {
        let _ = write!(s, ",\"op\":{}", esc(op));
    }
    s
}

/// Serializes a structured error response.
pub fn error_line(id: Option<u64>, code: &str, message: &str) -> String {
    format!(
        "{},\"error\":{{\"code\":{},\"message\":{}}}}}",
        head(id, false, None),
        esc(code),
        esc(message)
    )
}

/// Serializes a successful `load` response.
pub fn load_line(id: Option<u64>, program: &str, cached: bool, resident: usize) -> String {
    format!(
        "{},\"program\":{},\"cached\":{cached},\"resident\":{resident}}}",
        head(id, true, Some("load")),
        esc(program)
    )
}

/// Which invalidation path a `reload` took; reported in the response.
pub fn reload_path(rebuilt: bool, stats: &UpdateStats) -> &'static str {
    if rebuilt {
        "rebuild"
    } else if stats.noop {
        "noop"
    } else if stats.structural || stats.undiffed {
        "structural"
    } else {
        "incremental"
    }
}

/// Serializes a successful `reload` response: the preserved pool key, the
/// new content hash, the invalidation path, and the work/reuse counters
/// from the session update (all zero for a non-resident rebuild).
/// Deterministic: fixed key order, no timing fields.
pub fn reload_line(
    id: Option<u64>,
    program: &str,
    content: &str,
    rebuilt: bool,
    stats: &UpdateStats,
    resident: usize,
) -> String {
    format!(
        "{},\"program\":{},\"content\":{},\"path\":{},\"methods_total\":{},\
         \"methods_changed\":{},\"pta_reused\":{},\"ci_graph_reused\":{},\
         \"cs_graph_reused\":{},\"constraints_total\":{},\"constraints_retracted\":{},\
         \"constraints_readded\":{},\"csr_segments_total\":{},\"csr_segments_refrozen\":{},\
         \"memo_invalidated\":{},\"memo_kept\":{},\"resident\":{resident}}}",
        head(id, true, Some("reload")),
        esc(program),
        esc(content),
        esc(reload_path(rebuilt, stats)),
        stats.methods_total,
        stats.methods_changed,
        stats.pta_reused,
        stats.ci_graph_reused,
        stats.cs_graph_reused,
        stats.constraints_total,
        stats.constraints_retracted,
        stats.constraints_readded,
        stats.csr_segments_total,
        stats.csr_segments_refrozen,
        stats.memo_entries_invalidated,
        stats.memo_entries_kept,
    )
}

/// Serializes a `reload` *request* line as a client sends it (used by the
/// CLI's one-shot reload client). Round-trips through [`parse_request`].
pub fn reload_request_line(id: u64, client: &str, program: &str, sources: &[SourceFile]) -> String {
    let mut s = format!(
        "{{\"op\":\"reload\",\"id\":{id},\"client\":{},\"program\":{},\"sources\":[",
        esc(client),
        esc(program)
    );
    for (i, f) in sources.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let _ = write!(s, "{{\"name\":{},\"text\":{}}}", esc(&f.name), esc(&f.text));
    }
    s.push_str("]}");
    s
}

/// The admission-control level a request was executed under.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// Served exactly as requested.
    Full,
    /// Load shed one rung: CS requests answered context-insensitively.
    DegradeCi,
    /// Load shed two rungs: CI engine plus a hard step cap (truncated
    /// but sound results) — the fleet-wide PR 2 ladder.
    Truncate,
}

impl Admission {
    /// The protocol spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            Admission::Full => "full",
            Admission::DegradeCi => "degrade-ci",
            Admission::Truncate => "truncate",
        }
    }
}

/// Serializes a successful `slice` response. Deterministic: no timing
/// fields, fixed key order, statements in the canonical `stmt_lines`
/// order.
#[allow(clippy::too_many_arguments)]
pub fn slice_line(
    id: Option<u64>,
    program: &str,
    engine: Engine,
    kind: SliceKind,
    admission: Admission,
    degraded: bool,
    completeness: Completeness,
    stmts: &[String],
) -> String {
    let mut s = format!(
        "{},\"program\":{},\"engine\":{},\"kind\":{},\"admission\":{},\"degraded\":{degraded}",
        head(id, true, Some("slice")),
        esc(program),
        esc(engine_str(engine)),
        esc(kind_str(kind)),
        esc(admission.as_str()),
    );
    match completeness {
        Completeness::Complete => {
            let _ = write!(s, ",\"completeness\":\"complete\"");
        }
        Completeness::Truncated { reason, frontier } => {
            let _ = write!(
                s,
                ",\"completeness\":\"truncated\",\"reason\":{},\"frontier\":{frontier}",
                esc(&reason.to_string())
            );
        }
    }
    let _ = write!(s, ",\"stmt_count\":{},\"stmts\":[", stmts.len());
    for (i, line) in stmts.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&esc(line));
    }
    s.push_str("]}");
    s
}

/// Deterministic counters reported by a `status` response.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StatusSnapshot {
    /// Programs registered (live or evicted; sources retained).
    pub programs: usize,
    /// Sessions currently resident.
    pub live_sessions: usize,
    /// Programs currently quarantined (rebuilt on next request).
    pub quarantined: usize,
    /// Total resident estimate across live sessions (elements).
    pub resident: usize,
    /// Sessions evicted by LRU/watermark pressure so far.
    pub evictions: u64,
    /// Quarantine rebuilds performed so far.
    pub rebuilds: u64,
    /// Successful responses written so far.
    pub served: u64,
    /// Error responses written so far.
    pub errors: u64,
    /// Query panics caught so far.
    pub panics: u64,
    /// The pool's session cap, so occupancy is `live_sessions` of
    /// `pool_capacity` without consulting server config.
    pub pool_capacity: usize,
    /// Milliseconds since the server was built. Wall-clock (like the
    /// embedded trace report, status is excluded from bit-identity
    /// comparisons).
    pub uptime_ms: u64,
}

/// Serializes a `status` response; `report` (when tracing) must be a
/// `thinslice.run_report.v1` JSON document and is embedded verbatim.
pub fn status_line(id: Option<u64>, s: &StatusSnapshot, report: Option<&str>) -> String {
    let mut line = format!(
        "{},\"programs\":{},\"live_sessions\":{},\"quarantined\":{},\"resident\":{},\
         \"evictions\":{},\"rebuilds\":{},\"served\":{},\"errors\":{},\"panics\":{},\
         \"pool_capacity\":{},\"uptime_ms\":{}",
        head(id, true, Some("status")),
        s.programs,
        s.live_sessions,
        s.quarantined,
        s.resident,
        s.evictions,
        s.rebuilds,
        s.served,
        s.errors,
        s.panics,
        s.pool_capacity,
        s.uptime_ms,
    );
    if let Some(r) = report {
        let _ = write!(line, ",\"report\":{r}");
    }
    line.push('}');
    line
}

/// Serializes the final `shutdown` acknowledgement; `drained` is how many
/// queries were still queued or in flight when shutdown was requested,
/// all of which were answered before this line.
pub fn shutdown_line(id: Option<u64>, drained: usize) -> String {
    format!(
        "{},\"drained\":{drained}}}",
        head(id, true, Some("shutdown"))
    )
}

// ---- stats document (`thinslice.serve_stats.v1`) ----

/// One tenant's row in a stats document: request counters plus memo-hit
/// deltas and the latency quantiles of everything this client ran.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TenantRow {
    /// The client name requests carried.
    pub client: String,
    /// Slice requests answered successfully.
    pub requests: u64,
    /// Error responses attributed to this client.
    pub errors: u64,
    /// Panic retries spent on this client's requests.
    pub retries: u64,
    /// Requests answered below the requested engine (degrade-ci rung or
    /// in-query degradation).
    pub degraded: u64,
    /// Requests answered at the truncate rung.
    pub shed: u64,
    /// Cumulative step spend (graph nodes visited).
    pub spent_steps: u64,
    /// Exit-region memo hits this client's queries observed.
    pub exit_hits: u64,
    /// Exit-region memo misses this client's queries observed.
    pub exit_misses: u64,
    /// Cross-worker exit-share hits this client's queries observed.
    pub shared_hits: u64,
    /// Wall-clock latency quantiles in microseconds.
    pub latency_us: HistogramSummary,
}

/// One program's row in a stats document: pool residency plus the
/// session's cumulative memo counters and per-session latency quantiles.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SessionRow {
    /// The 16-hex-digit pool key (hash of the sources first loaded).
    pub program: String,
    /// The 16-hex-digit hash of the *current* sources. Equal to
    /// `program` until a `reload` swaps the sources under the same key.
    pub content: String,
    /// Whether a session is currently resident.
    pub live: bool,
    /// Whether the program is quarantined (rebuild pending).
    pub quarantined: bool,
    /// Resident estimate in elements (0 while evicted).
    pub resident: usize,
    /// Exit-region memo hits accumulated by the live session.
    pub exit_hits: u64,
    /// Exit-region memo misses accumulated by the live session.
    pub exit_misses: u64,
    /// Cross-worker exit-share hits accumulated by the live session.
    pub shared_hits: u64,
    /// Wall-clock latency quantiles of queries on this program, in
    /// microseconds.
    pub latency_us: HistogramSummary,
}

/// One slow-query log entry: a request that exceeded the `--slow-ms`
/// threshold, with its query shape, stage breakdown, and completeness.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SlowQueryRow {
    /// The request's correlation id.
    pub id: Option<u64>,
    /// The client that sent it.
    pub client: String,
    /// The program hash it ran against.
    pub program: String,
    /// Slice kind (protocol spelling).
    pub kind: String,
    /// Engine actually used (protocol spelling).
    pub engine: String,
    /// Admission level it executed under (protocol spelling).
    pub admission: String,
    /// `complete` or `truncated`.
    pub completeness: String,
    /// Seed positions in the request.
    pub seeds: usize,
    /// Stage breakdown: time spent queued before a worker picked it up.
    pub queue_us: u64,
    /// Stage breakdown: time inside query execution (all attempts).
    pub exec_us: u64,
    /// End-to-end latency from enqueue to response.
    pub total_us: u64,
    /// Step spend (graph nodes visited).
    pub spend: u64,
}

/// Everything a `stats` response reports, gathered by the server under
/// its locks and serialized by [`stats_doc`].
#[derive(Debug, Clone, Default)]
pub struct StatsSnapshot {
    /// Milliseconds since the server was built.
    pub uptime_ms: u64,
    /// The same counters `status` reports.
    pub status: StatusSnapshot,
    /// Pool checkouts served by a live session.
    pub pool_hits: u64,
    /// Pool checkouts that had to (re)build a session.
    pub pool_misses: u64,
    /// Sessions built in total.
    pub pool_builds: u64,
    /// Sessions poisoned by a panicking query.
    pub pool_quarantines: u64,
    /// Reload ops applied so far.
    pub pool_reloads: u64,
    /// Reloads that updated a resident session in place (vs rebuilt).
    pub pool_reloads_incremental: u64,
    /// Session builds satisfied by a warm-start snapshot restore.
    pub snapshot_hits: u64,
    /// Builds that looked for a snapshot and found no file.
    pub snapshot_misses: u64,
    /// Snapshot files persisted (build/reload/evict/drain).
    pub snapshot_writes: u64,
    /// Snapshot files found but discarded as corrupt or stale.
    pub snapshot_discarded_corrupt: u64,
    /// Flight-recorder events ever recorded (0 when disabled).
    pub recorded: u64,
    /// Flight-recorder ring capacity (0 when disabled).
    pub recorder_capacity: usize,
    /// Per-tenant tables, in client name order.
    pub tenants: Vec<TenantRow>,
    /// Per-program tables, in hash order.
    pub sessions: Vec<SessionRow>,
    /// The slow-query log, oldest first (bounded).
    pub slow: Vec<SlowQueryRow>,
    /// The flight-recorder tail, oldest first.
    pub events: Vec<FlightEvent>,
}

fn summary_json(s: &HistogramSummary) -> String {
    format!(
        "{{\"count\":{},\"sum\":{},\"p50\":{},\"p95\":{},\"max\":{}}}",
        s.count, s.sum, s.p50, s.p95, s.max
    )
}

/// Serializes a [`StatsSnapshot`] as a standalone
/// `thinslice.serve_stats.v1` JSON document (fixed key order).
pub fn stats_doc(s: &StatsSnapshot) -> String {
    let mut d = format!(
        "{{\"schema\":{},\"uptime_ms\":{},\"pool\":{{\"programs\":{},\"live_sessions\":{},\
         \"capacity\":{},\"quarantined\":{},\"resident\":{},\"hits\":{},\"misses\":{},\
         \"builds\":{},\"evictions\":{},\"quarantines\":{},\"rebuilds\":{},\
         \"reloads\":{},\"reloads_incremental\":{},\"snapshot_hits\":{},\
         \"snapshot_misses\":{},\"snapshot_writes\":{},\"snapshot_discarded_corrupt\":{}}},\
         \"server\":{{\"served\":{},\"errors\":{},\"panics\":{},\"recorded\":{},\
         \"recorder_capacity\":{}}}",
        esc(SERVE_STATS_SCHEMA),
        s.uptime_ms,
        s.status.programs,
        s.status.live_sessions,
        s.status.pool_capacity,
        s.status.quarantined,
        s.status.resident,
        s.pool_hits,
        s.pool_misses,
        s.pool_builds,
        s.status.evictions,
        s.pool_quarantines,
        s.status.rebuilds,
        s.pool_reloads,
        s.pool_reloads_incremental,
        s.snapshot_hits,
        s.snapshot_misses,
        s.snapshot_writes,
        s.snapshot_discarded_corrupt,
        s.status.served,
        s.status.errors,
        s.status.panics,
        s.recorded,
        s.recorder_capacity,
    );
    d.push_str(",\"tenants\":[");
    for (i, t) in s.tenants.iter().enumerate() {
        if i > 0 {
            d.push(',');
        }
        let _ = write!(
            d,
            "{{\"client\":{},\"requests\":{},\"errors\":{},\"retries\":{},\"degraded\":{},\
             \"shed\":{},\"spent_steps\":{},\"exit_hits\":{},\"exit_misses\":{},\
             \"shared_hits\":{},\"latency_us\":{}}}",
            esc(&t.client),
            t.requests,
            t.errors,
            t.retries,
            t.degraded,
            t.shed,
            t.spent_steps,
            t.exit_hits,
            t.exit_misses,
            t.shared_hits,
            summary_json(&t.latency_us),
        );
    }
    d.push_str("],\"sessions\":[");
    for (i, r) in s.sessions.iter().enumerate() {
        if i > 0 {
            d.push(',');
        }
        let _ = write!(
            d,
            "{{\"program\":{},\"content\":{},\"live\":{},\"quarantined\":{},\"resident\":{},\
             \"exit_hits\":{},\"exit_misses\":{},\"shared_hits\":{},\"latency_us\":{}}}",
            esc(&r.program),
            esc(&r.content),
            r.live,
            r.quarantined,
            r.resident,
            r.exit_hits,
            r.exit_misses,
            r.shared_hits,
            summary_json(&r.latency_us),
        );
    }
    d.push_str("],\"slow\":[");
    for (i, q) in s.slow.iter().enumerate() {
        if i > 0 {
            d.push(',');
        }
        let _ = write!(
            d,
            "{{\"id\":{},\"client\":{},\"program\":{},\"kind\":{},\"engine\":{},\
             \"admission\":{},\"completeness\":{},\"seeds\":{},\"queue_us\":{},\
             \"exec_us\":{},\"total_us\":{},\"spend\":{}}}",
            id_json(q.id),
            esc(&q.client),
            esc(&q.program),
            esc(&q.kind),
            esc(&q.engine),
            esc(&q.admission),
            esc(&q.completeness),
            q.seeds,
            q.queue_us,
            q.exec_us,
            q.total_us,
            q.spend,
        );
    }
    d.push_str("],\"events\":[");
    for (i, e) in s.events.iter().enumerate() {
        if i > 0 {
            d.push(',');
        }
        let _ = write!(
            d,
            "{{\"seq\":{},\"kind\":{},\"label\":{},\"a\":{},\"b\":{}}}",
            e.seq,
            esc(e.kind.as_str()),
            esc(e.label()),
            e.a,
            e.b,
        );
    }
    d.push_str("]}");
    d
}

/// Serializes a `stats` response: the standard envelope with the
/// `thinslice.serve_stats.v1` document embedded under `"stats"`.
pub fn stats_line(id: Option<u64>, snapshot: &StatsSnapshot) -> String {
    format!(
        "{},\"stats\":{}}}",
        head(id, true, Some("stats")),
        stats_doc(snapshot)
    )
}

// ---- response validation (validate-report satellite) ----

fn need_u64(v: &Json, key: &str) -> Result<u64, String> {
    v.get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| format!("missing or non-integer field \"{key}\""))
}

fn need_str<'a>(v: &'a Json, key: &str) -> Result<&'a str, String> {
    v.get(key)
        .and_then(Json::as_str)
        .ok_or_else(|| format!("missing or non-string field \"{key}\""))
}

/// Validates one server response line against the
/// `thinslice.serve_response.v1` shape, returning a one-line summary.
///
/// An embedded `report` must itself carry the `thinslice.run_report.v1`
/// schema tag with `spans`/`metrics` sections (full report validation is
/// `validate-report`'s file mode).
///
/// # Errors
///
/// Returns a description of the first shape violation.
pub fn validate_response_line(line: &str) -> Result<String, String> {
    let v = Json::parse(line).map_err(|e| format!("malformed JSON: {e}"))?;
    let schema = need_str(&v, "schema")?;
    if schema != RESPONSE_SCHEMA {
        return Err(format!(
            "schema is {schema:?}, expected {RESPONSE_SCHEMA:?}"
        ));
    }
    let id = match v.get("id") {
        Some(Json::Null) | None => "null".to_string(),
        Some(j) => j
            .as_u64()
            .ok_or_else(|| format!("field \"id\" must be integer or null, got {j:?}"))?
            .to_string(),
    };
    let ok = match v.get("ok") {
        Some(Json::Bool(b)) => *b,
        other => return Err(format!("field \"ok\" must be a boolean, got {other:?}")),
    };
    if !ok {
        let err = v.get("error").ok_or("error response missing \"error\"")?;
        let code = need_str(err, "code")?;
        need_str(err, "message")?;
        return Ok(format!("error id={id} code={code}"));
    }
    let op = need_str(&v, "op")?;
    match op {
        "load" => {
            let program = need_str(&v, "program")?;
            if program.len() != 16 || !program.bytes().all(|b| b.is_ascii_hexdigit()) {
                return Err(format!(
                    "\"program\" must be a 16-hex-digit hash, got {program:?}"
                ));
            }
            need_u64(&v, "resident")?;
            Ok(format!("ok load id={id} program={program}"))
        }
        "reload" => {
            for key in ["program", "content"] {
                let hash = need_str(&v, key)?;
                if hash.len() != 16 || !hash.bytes().all(|b| b.is_ascii_hexdigit()) {
                    return Err(format!(
                        "\"{key}\" must be a 16-hex-digit hash, got {hash:?}"
                    ));
                }
            }
            let path = need_str(&v, "path")?;
            if !matches!(path, "noop" | "incremental" | "structural" | "rebuild") {
                return Err(format!("unknown reload path {path:?}"));
            }
            for key in [
                "methods_total",
                "methods_changed",
                "constraints_total",
                "constraints_retracted",
                "constraints_readded",
                "csr_segments_total",
                "csr_segments_refrozen",
                "memo_invalidated",
                "memo_kept",
                "resident",
            ] {
                need_u64(&v, key)?;
            }
            for key in ["pta_reused", "ci_graph_reused", "cs_graph_reused"] {
                if !matches!(v.get(key), Some(Json::Bool(_))) {
                    return Err(format!("field {key:?} must be a boolean"));
                }
            }
            Ok(format!("ok reload id={id} path={path}"))
        }
        "slice" => {
            need_str(&v, "program")?;
            let engine = need_str(&v, "engine")?;
            if !matches!(engine, "ci" | "cs") {
                return Err(format!("unknown engine {engine:?}"));
            }
            let kind = need_str(&v, "kind")?;
            if !matches!(kind, "thin" | "data" | "full") {
                return Err(format!("unknown kind {kind:?}"));
            }
            let admission = need_str(&v, "admission")?;
            if !matches!(admission, "full" | "degrade-ci" | "truncate") {
                return Err(format!("unknown admission level {admission:?}"));
            }
            match need_str(&v, "completeness")? {
                "complete" => {}
                "truncated" => {
                    need_str(&v, "reason")?;
                    need_u64(&v, "frontier")?;
                }
                other => return Err(format!("unknown completeness {other:?}")),
            }
            let count = need_u64(&v, "stmt_count")?;
            let stmts = v
                .get("stmts")
                .and_then(Json::as_arr)
                .ok_or("missing or non-array field \"stmts\"")?;
            if stmts.len() as u64 != count {
                return Err(format!(
                    "stmt_count is {count} but \"stmts\" has {} entries",
                    stmts.len()
                ));
            }
            if let Some(bad) = stmts.iter().find(|s| s.as_str().is_none()) {
                return Err(format!("\"stmts\" entries must be strings, got {bad:?}"));
            }
            Ok(format!("ok slice id={id} stmts={count}"))
        }
        "status" => {
            for key in [
                "programs",
                "live_sessions",
                "quarantined",
                "resident",
                "evictions",
                "rebuilds",
                "served",
                "errors",
                "panics",
            ] {
                need_u64(&v, key)?;
            }
            if let Some(report) = v.get("report") {
                let rschema =
                    need_str(report, "schema").map_err(|e| format!("embedded report: {e}"))?;
                if rschema != RUN_REPORT_SCHEMA {
                    return Err(format!(
                        "embedded report schema is {rschema:?}, expected {RUN_REPORT_SCHEMA:?}"
                    ));
                }
            }
            Ok(format!("ok status id={id}"))
        }
        "stats" => {
            let doc = v.get("stats").ok_or("stats response missing \"stats\"")?;
            let summary = validate_stats_doc(doc).map_err(|e| format!("embedded stats: {e}"))?;
            Ok(format!("ok stats id={id} ({summary})"))
        }
        "shutdown" => {
            need_u64(&v, "drained")?;
            Ok(format!("ok shutdown id={id}"))
        }
        other => Err(format!("unknown op {other:?}")),
    }
}

fn need_summary(v: &Json, key: &str) -> Result<(), String> {
    let s = v.get(key).ok_or_else(|| format!("missing field {key:?}"))?;
    need_u64(s, "count")?;
    for f in ["sum", "p50", "p95", "max"] {
        s.get(f)
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("{key}: missing or non-number field {f:?}"))?;
    }
    Ok(())
}

/// Validates a `thinslice.serve_stats.v1` document (standalone or as
/// extracted from a `stats` response), returning a one-line summary.
///
/// # Errors
///
/// Returns a description of the first shape violation.
pub fn validate_stats_doc(v: &Json) -> Result<String, String> {
    let schema = need_str(v, "schema")?;
    if schema != SERVE_STATS_SCHEMA {
        return Err(format!(
            "schema is {schema:?}, expected {SERVE_STATS_SCHEMA:?}"
        ));
    }
    need_u64(v, "uptime_ms")?;
    let pool = v.get("pool").ok_or("missing \"pool\" section")?;
    for key in [
        "programs",
        "live_sessions",
        "capacity",
        "quarantined",
        "resident",
        "hits",
        "misses",
        "builds",
        "evictions",
        "quarantines",
        "rebuilds",
        "reloads",
        "reloads_incremental",
        "snapshot_hits",
        "snapshot_misses",
        "snapshot_writes",
        "snapshot_discarded_corrupt",
    ] {
        need_u64(pool, key).map_err(|e| format!("pool: {e}"))?;
    }
    let server = v.get("server").ok_or("missing \"server\" section")?;
    for key in [
        "served",
        "errors",
        "panics",
        "recorded",
        "recorder_capacity",
    ] {
        need_u64(server, key).map_err(|e| format!("server: {e}"))?;
    }
    let tenants = v
        .get("tenants")
        .and_then(Json::as_arr)
        .ok_or("missing or non-array field \"tenants\"")?;
    for t in tenants {
        need_str(t, "client").map_err(|e| format!("tenant: {e}"))?;
        for key in [
            "requests",
            "errors",
            "retries",
            "degraded",
            "shed",
            "spent_steps",
            "exit_hits",
            "exit_misses",
            "shared_hits",
        ] {
            need_u64(t, key).map_err(|e| format!("tenant: {e}"))?;
        }
        need_summary(t, "latency_us").map_err(|e| format!("tenant: {e}"))?;
    }
    let sessions = v
        .get("sessions")
        .and_then(Json::as_arr)
        .ok_or("missing or non-array field \"sessions\"")?;
    for s in sessions {
        for key in ["program", "content"] {
            let hash = need_str(s, key).map_err(|e| format!("session: {e}"))?;
            if hash.len() != 16 || !hash.bytes().all(|b| b.is_ascii_hexdigit()) {
                return Err(format!(
                    "session \"{key}\" must be a 16-hex-digit hash, got {hash:?}"
                ));
            }
        }
        for key in ["resident", "exit_hits", "exit_misses", "shared_hits"] {
            need_u64(s, key).map_err(|e| format!("session: {e}"))?;
        }
        for key in ["live", "quarantined"] {
            if !matches!(s.get(key), Some(Json::Bool(_))) {
                return Err(format!("session: field {key:?} must be a boolean"));
            }
        }
        need_summary(s, "latency_us").map_err(|e| format!("session: {e}"))?;
    }
    let slow = v
        .get("slow")
        .and_then(Json::as_arr)
        .ok_or("missing or non-array field \"slow\"")?;
    for q in slow {
        for key in [
            "client",
            "program",
            "kind",
            "engine",
            "admission",
            "completeness",
        ] {
            need_str(q, key).map_err(|e| format!("slow: {e}"))?;
        }
        for key in ["seeds", "queue_us", "exec_us", "total_us", "spend"] {
            need_u64(q, key).map_err(|e| format!("slow: {e}"))?;
        }
    }
    let events = v
        .get("events")
        .and_then(Json::as_arr)
        .ok_or("missing or non-array field \"events\"")?;
    let mut prev_seq = None;
    for e in events {
        let seq = need_u64(e, "seq").map_err(|e| format!("event: {e}"))?;
        need_str(e, "kind").map_err(|e| format!("event: {e}"))?;
        need_str(e, "label").map_err(|e| format!("event: {e}"))?;
        need_u64(e, "a").map_err(|e| format!("event: {e}"))?;
        need_u64(e, "b").map_err(|e| format!("event: {e}"))?;
        if let Some(p) = prev_seq {
            if seq <= p {
                return Err(format!("event tail out of order: seq {seq} after {p}"));
            }
        }
        prev_seq = Some(seq);
    }
    Ok(format!(
        "tenants={} sessions={} slow={} events={}",
        tenants.len(),
        sessions.len(),
        slow.len(),
        events.len()
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use thinslice_util::govern::ExhaustReason;

    #[test]
    fn parses_a_full_slice_request() {
        let req = parse_request(
            r#"{"op":"slice","id":3,"client":"ui","program":"0011223344556677",
               "seeds":[{"file":"a.mj","line":4},{"file":"a.mj","line":9}],
               "kind":"data","engine":"cs","deadline_ms":250,"step_budget":5000,
               "degrade":false,"chaos":{"panics":2}}"#,
        )
        .unwrap();
        assert_eq!(req.id, Some(3));
        assert_eq!(req.client, "ui");
        let Op::Slice(s) = req.op else {
            panic!("expected slice")
        };
        assert!(matches!(s.program, ProgramRef::Hash(ref h) if h == "0011223344556677"));
        assert_eq!(s.seeds.len(), 2);
        assert_eq!(s.kind, SliceKind::TraditionalData);
        assert_eq!(s.engine, Engine::Cs);
        assert_eq!(s.deadline_ms, Some(250));
        assert_eq!(s.step_budget, Some(5000));
        assert!(!s.degrade);
        assert_eq!(s.chaos_panics, 2);
    }

    #[test]
    fn defaults_are_thin_ci_degrading() {
        let req = parse_request(
            r#"{"op":"slice","sources":[{"name":"t.mj","text":"class M {}"}],
               "seed":{"file":"t.mj","line":1}}"#,
        )
        .unwrap();
        assert_eq!(req.id, None);
        assert_eq!(req.client, "anon");
        let Op::Slice(s) = req.op else {
            panic!("expected slice")
        };
        assert!(matches!(s.program, ProgramRef::Inline(ref f) if f.len() == 1));
        assert_eq!(s.kind, SliceKind::Thin);
        assert_eq!(s.engine, Engine::Ci);
        assert!(s.degrade);
        assert_eq!(s.chaos_panics, 0);
    }

    #[test]
    fn malformed_inputs_become_structured_errors() {
        for (line, code, needle) in [
            ("{not json", "parse", "malformed JSON"),
            ("", "parse", "malformed JSON"),
            ("[1,2]", "protocol", "must be a JSON object"),
            ("42", "protocol", "must be a JSON object"),
            (r#"{"op":"warp"}"#, "protocol", "unknown op \"warp\""),
            (r#"{"id":1}"#, "protocol", "missing required field \"op\""),
            (r#"{"op":"slice","id":1}"#, "protocol", "\"program\""),
            (
                r#"{"op":"slice","id":1,"program":"x","seed":{"file":"t.mj","line":0}}"#,
                "protocol",
                "positive integer",
            ),
            (
                r#"{"op":"slice","id":1,"program":"x","seed":{"file":"t.mj","line":2},"kind":"fat"}"#,
                "protocol",
                "unknown kind \"fat\"",
            ),
            (
                r#"{"op":"slice","id":1,"program":"x","seed":{"file":"t.mj","line":2},"engine":"warp"}"#,
                "protocol",
                "unknown engine \"warp\"",
            ),
            (r#"{"op":"load","id":1,"sources":[]}"#, "protocol", "empty"),
            (
                r#"{"op":"load","id":1,"sources":[{"name":"t.mj"}]}"#,
                "protocol",
                "\"text\"",
            ),
            (r#"{"op":"slice","id":"x"}"#, "protocol", "\"id\""),
        ] {
            let err = parse_request(line).unwrap_err();
            assert_eq!(err.code, code, "line {line:?} → {err:?}");
            assert!(
                err.message.contains(needle),
                "line {line:?}: message {:?} should mention {needle:?}",
                err.message
            );
        }
    }

    #[test]
    fn errors_echo_the_request_id_once_extractable() {
        let err = parse_request(r#"{"op":"slice","id":9,"program":"x"}"#).unwrap_err();
        assert_eq!(err.id, Some(9));
        let err = parse_request("][").unwrap_err();
        assert_eq!(err.id, None);
    }

    #[test]
    fn oversized_lines_are_rejected_without_parsing() {
        let line = format!(
            "{{\"op\":\"load\",\"pad\":\"{}\"}}",
            "x".repeat(MAX_LINE_BYTES)
        );
        let err = parse_request(&line).unwrap_err();
        assert_eq!(err.code, "too_large");
        assert!(err.message.contains("limit"));
    }

    #[test]
    fn response_lines_are_deterministic_and_validate() {
        let e = error_line(Some(4), "parse", "malformed JSON: bad \"quote\"");
        assert_eq!(
            e,
            "{\"schema\":\"thinslice.serve_response.v1\",\"id\":4,\"ok\":false,\
             \"error\":{\"code\":\"parse\",\"message\":\"malformed JSON: bad \\\"quote\\\"\"}}"
        );
        assert!(validate_response_line(&e)
            .unwrap()
            .starts_with("error id=4"));

        let l = load_line(Some(1), "00112233aabbccdd", true, 420);
        assert!(validate_response_line(&l).unwrap().contains("load"));

        let s = slice_line(
            Some(2),
            "00112233aabbccdd",
            Engine::Cs,
            SliceKind::Thin,
            Admission::Full,
            false,
            Completeness::Complete,
            &["t.mj:2: int x = 1".to_string()],
        );
        assert_eq!(validate_response_line(&s).unwrap(), "ok slice id=2 stmts=1");
        // Byte-for-byte stability is what the chaos suite leans on.
        assert_eq!(
            s,
            slice_line(
                Some(2),
                "00112233aabbccdd",
                Engine::Cs,
                SliceKind::Thin,
                Admission::Full,
                false,
                Completeness::Complete,
                &["t.mj:2: int x = 1".to_string()],
            )
        );

        let t = slice_line(
            None,
            "00112233aabbccdd",
            Engine::Ci,
            SliceKind::TraditionalFull,
            Admission::Truncate,
            true,
            Completeness::Truncated {
                reason: ExhaustReason::StepQuota,
                frontier: 17,
            },
            &[],
        );
        assert!(t.contains("\"completeness\":\"truncated\""));
        assert!(t.contains("\"reason\":\"step quota\""));
        assert!(t.contains("\"frontier\":17"));
        assert_eq!(
            validate_response_line(&t).unwrap(),
            "ok slice id=null stmts=0"
        );

        let st = status_line(Some(5), &StatusSnapshot::default(), None);
        assert_eq!(validate_response_line(&st).unwrap(), "ok status id=5");

        let sd = shutdown_line(Some(6), 3);
        assert_eq!(validate_response_line(&sd).unwrap(), "ok shutdown id=6");
    }

    #[test]
    fn parses_a_reload_request() {
        let req = parse_request(
            r#"{"op":"reload","id":11,"program":"0011223344556677",
               "sources":[{"name":"t.mj","text":"class M {}"}]}"#,
        )
        .unwrap();
        assert_eq!(req.id, Some(11));
        let Op::Reload { program, sources } = req.op else {
            panic!("expected reload")
        };
        assert_eq!(program, "0011223344556677");
        assert_eq!(sources.len(), 1);
        // Both fields are required.
        for line in [
            r#"{"op":"reload","id":1,"program":"0011223344556677"}"#,
            r#"{"op":"reload","id":1,"sources":[{"name":"t.mj","text":"class M {}"}]}"#,
        ] {
            assert_eq!(parse_request(line).unwrap_err().code, "protocol");
        }
    }

    #[test]
    fn reload_request_lines_round_trip() {
        let files = vec![SourceFile {
            name: "a \"b\".mj".into(),
            text: "class M {\n\tint x;\n}".into(),
        }];
        let line = reload_request_line(7, "cli", "0011223344556677", &files);
        let req = parse_request(&line).unwrap();
        assert_eq!(req.id, Some(7));
        assert_eq!(req.client, "cli");
        let Op::Reload { program, sources } = req.op else {
            panic!("expected reload")
        };
        assert_eq!(program, "0011223344556677");
        assert_eq!(sources, files);
    }

    #[test]
    fn reload_lines_serialize_and_validate() {
        let stats = UpdateStats {
            methods_total: 4,
            methods_changed: 1,
            pta_reused: true,
            ci_graph_reused: true,
            cs_graph_reused: true,
            constraints_total: 20,
            csr_segments_total: 6,
            memo_entries_kept: 3,
            ..UpdateStats::default()
        };
        let line = reload_line(
            Some(8),
            "0011223344556677",
            "ffeeddccbbaa9988",
            false,
            &stats,
            420,
        );
        assert_eq!(
            validate_response_line(&line).unwrap(),
            "ok reload id=8 path=incremental"
        );
        // Deterministic serialization (no timing fields).
        assert_eq!(
            line,
            reload_line(
                Some(8),
                "0011223344556677",
                "ffeeddccbbaa9988",
                false,
                &stats,
                420,
            )
        );
        assert!(line.contains("\"content\":\"ffeeddccbbaa9988\""));
        assert!(line.contains("\"pta_reused\":true"));
        // Path classification covers all four outcomes.
        assert_eq!(reload_path(true, &stats), "rebuild");
        assert_eq!(reload_path(false, &UpdateStats::default()), "incremental");
        let noop = UpdateStats {
            noop: true,
            ..UpdateStats::default()
        };
        assert_eq!(reload_path(false, &noop), "noop");
        let structural = UpdateStats {
            structural: true,
            ..UpdateStats::default()
        };
        assert_eq!(reload_path(false, &structural), "structural");
    }

    #[test]
    fn stats_lines_serialize_and_validate() {
        use thinslice_util::telemetry::{FlightKind, FlightRecorder};
        let rec = FlightRecorder::new(4);
        rec.record(FlightKind::SessionBuilt, "00112233aabbccdd", 42, 0);
        rec.record(FlightKind::RequestAdmitted, "ui", 7, 1);
        let snap = StatsSnapshot {
            uptime_ms: 1234,
            status: StatusSnapshot {
                programs: 1,
                live_sessions: 1,
                pool_capacity: 8,
                served: 3,
                ..StatusSnapshot::default()
            },
            pool_hits: 2,
            pool_builds: 1,
            recorded: rec.recorded(),
            recorder_capacity: rec.capacity(),
            tenants: vec![TenantRow {
                client: "ui".to_string(),
                requests: 3,
                spent_steps: 120,
                exit_hits: 5,
                latency_us: HistogramSummary {
                    count: 3,
                    sum: 450.0,
                    p50: 150.0,
                    p95: 200.0,
                    max: 200.0,
                },
                ..TenantRow::default()
            }],
            sessions: vec![SessionRow {
                program: "00112233aabbccdd".to_string(),
                content: "ffeeddccbbaa9988".to_string(),
                live: true,
                resident: 42,
                ..SessionRow::default()
            }],
            slow: vec![SlowQueryRow {
                id: Some(9),
                client: "ui".to_string(),
                program: "00112233aabbccdd".to_string(),
                kind: "thin".to_string(),
                engine: "ci".to_string(),
                admission: "full".to_string(),
                completeness: "complete".to_string(),
                seeds: 1,
                queue_us: 10,
                exec_us: 90,
                total_us: 100,
                spend: 12,
            }],
            events: rec.snapshot(),
            ..StatsSnapshot::default()
        };
        // The standalone document validates under its own schema.
        let doc = stats_doc(&snap);
        let parsed = Json::parse(&doc).expect("stats doc parses");
        assert_eq!(
            validate_stats_doc(&parsed).unwrap(),
            "tenants=1 sessions=1 slow=1 events=2"
        );
        // The response line validates under the envelope schema.
        let line = stats_line(Some(5), &snap);
        assert_eq!(
            validate_response_line(&line).unwrap(),
            "ok stats id=5 (tenants=1 sessions=1 slow=1 events=2)"
        );
    }

    #[test]
    fn stats_validation_rejects_shape_violations() {
        let reject = |doc: &str, needle: &str| {
            let v = Json::parse(doc).unwrap();
            let err = validate_stats_doc(&v).unwrap_err();
            assert!(err.contains(needle), "{err:?} should mention {needle:?}");
        };
        reject("{\"schema\":\"other.v1\"}", "schema");
        reject(
            "{\"schema\":\"thinslice.serve_stats.v1\",\"uptime_ms\":1}",
            "pool",
        );
        // An out-of-order event tail is caught.
        let doc = stats_doc(&StatsSnapshot::default());
        let bad = doc.replace(
            "\"events\":[]",
            "\"events\":[{\"seq\":2,\"kind\":\"slow_query\",\"label\":\"\",\"a\":0,\"b\":0},\
             {\"seq\":1,\"kind\":\"slow_query\",\"label\":\"\",\"a\":0,\"b\":0}]",
        );
        reject(&bad, "out of order");
        // A stats response whose document is broken fails line validation.
        let line = format!(
            "{},\"stats\":{{\"schema\":\"wrong.v1\"}}}}",
            "{\"schema\":\"thinslice.serve_response.v1\",\"id\":1,\"ok\":true,\"op\":\"stats\""
        );
        assert!(validate_response_line(&line)
            .unwrap_err()
            .contains("embedded stats"));
    }

    #[test]
    fn validation_rejects_shape_violations() {
        assert!(validate_response_line("{oops").is_err());
        assert!(validate_response_line("{\"schema\":\"other.v1\"}").is_err());
        // stmt_count disagreeing with the array is caught.
        let bad = "{\"schema\":\"thinslice.serve_response.v1\",\"id\":1,\"ok\":true,\
                   \"op\":\"slice\",\"program\":\"00112233aabbccdd\",\"engine\":\"ci\",\
                   \"kind\":\"thin\",\"admission\":\"full\",\"degraded\":false,\
                   \"completeness\":\"complete\",\"stmt_count\":2,\"stmts\":[\"a\"]}";
        let err = validate_response_line(bad).unwrap_err();
        assert!(err.contains("stmt_count"), "{err}");
        // An embedded report must carry the run-report schema.
        let bad_report = status_line(
            Some(1),
            &StatusSnapshot::default(),
            Some("{\"schema\":\"wrong.v1\"}"),
        );
        assert!(validate_response_line(&bad_report).is_err());
    }
}
