//! The hardened request loop: fair scheduling, admission control, panic
//! quarantine, deadlines, and graceful drain.
//!
//! A [`Server`] owns one [`SessionPool`] and a scheduler of per-client
//! FIFO queues served round-robin, so one heavy tenant cannot starve the
//! rest. `load`/`status`/`shutdown` are answered synchronously on the
//! reader thread; `slice` requests are queued and executed by a worker
//! pool.
//!
//! Robustness layers, outermost first:
//!
//! * **Malformed input** — the reader consumes raw bytes line by line
//!   (bounded, lossy UTF-8), so garbage, truncated JSON, or oversized
//!   lines each produce one structured error response and the loop keeps
//!   reading. Nothing a client sends can disconnect it or panic the
//!   process.
//! * **Admission control** — under queue pressure the fleet walks the
//!   PR 2 degradation ladder instead of refusing service: beyond
//!   `degrade_pending` queued queries, CS requests are answered
//!   context-insensitively ([`Admission::DegradeCi`]); beyond
//!   `truncate_pending`, a hard step cap yields truncated-but-sound
//!   results ([`Admission::Truncate`]). A client that exhausts its
//!   `client_step_budget` is degraded the same way while others ride
//!   unaffected.
//! * **Panic isolation** — each query attempt runs under `catch_unwind`.
//!   A panic quarantines the session (dropped and rebuilt from retained
//!   sources on next use) and the request is retried on the fresh
//!   session up to `retries` times before a structured `panic` error is
//!   returned. Sibling requests never notice.
//! * **Deterministic fault injection** — the PR 2 [`FaultInjection`]
//!   shape extends into the request path: a config-level fault panics
//!   the Nth slice request's first `attempts` attempts, and chaos-mode
//!   requests may carry `"chaos":{"panics":n}` themselves. The chaos
//!   suite is built on this.
//! * **Graceful shutdown** — EOF, a `shutdown` request, or an external
//!   signal flag all stop intake, drain every queued and in-flight
//!   query (each still gets its response), then acknowledge.
//!
//! [`FaultInjection`]: thinslice::FaultInjection

use std::collections::{BTreeMap, VecDeque};
use std::io::{BufRead, Read, Write};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use crate::pool::{PoolConfig, PoolError, SessionPool};
use crate::protocol::{
    engine_str, error_line, kind_str, load_line, parse_request, reload_line, shutdown_line,
    slice_line, stats_line, status_line, Admission, Op, ProgramRef, SliceRequest, SlowQueryRow,
    SourceFile, StatsSnapshot, StatusSnapshot, TenantRow,
};
use thinslice::{report, Budget, Engine, FaultInjection, Query, QueryPolicy, SliceResult};
use thinslice_util::govern::Completeness;
use thinslice_util::telemetry::{FlightKind, FlightRecorder, Histogram, Telemetry};
use thinslice_util::FxHashMap;

/// How many slow queries the log retains (oldest dropped first).
const SLOW_LOG_CAP: usize = 32;

/// How many flight-recorder events a `stats` response tails.
const EVENT_TAIL: usize = 32;

/// A writer shared between the reader thread and the workers; response
/// lines are serialized under its lock and flushed per line.
pub type SharedOut = Arc<Mutex<dyn Write + Send>>;

/// Wraps a writer for [`Server::serve`].
pub fn shared_out<W: Write + Send + 'static>(w: W) -> SharedOut {
    Arc::new(Mutex::new(w))
}

/// Server tuning knobs. The default is a deterministic single-worker
/// daemon with admission thresholds suited to interactive load.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads executing slice queries.
    pub workers: usize,
    /// Session-pool sizing (cap, watermark, points-to config).
    pub pool: PoolConfig,
    /// Deadline applied to requests that do not carry their own.
    pub default_deadline_ms: Option<u64>,
    /// Step quota applied to requests that do not carry their own.
    pub default_step_budget: Option<u64>,
    /// Queue depth at which CS requests degrade to CI (`usize::MAX`
    /// disables the rung).
    pub degrade_pending: usize,
    /// Queue depth at which requests additionally get a hard step cap.
    pub truncate_pending: usize,
    /// The step cap applied at the [`Admission::Truncate`] rung.
    pub truncate_step_cap: u64,
    /// Cumulative per-client step allowance (graph nodes visited);
    /// clients over it are served at the truncate rung.
    pub client_step_budget: Option<u64>,
    /// How many times a panicked request is retried on a rebuilt
    /// session before a `panic` error response.
    pub retries: u32,
    /// Whether request-carried `"chaos"` fault fields are honoured.
    pub chaos: bool,
    /// Config-level deterministic fault: the `query`-th slice request
    /// (arrival order, 0-based) panics for its first `attempts` attempts.
    pub fault: Option<FaultInjection>,
    /// Reject programs whose summed source bytes exceed this.
    pub max_program_bytes: usize,
    /// Collect telemetry; `status` responses then embed a
    /// `thinslice.run_report.v1` report.
    pub trace: bool,
    /// Flight-recorder ring capacity in events; 0 disables the recorder
    /// entirely (the `stats` op then reports an empty event tail).
    pub recorder_capacity: usize,
    /// Slow-query threshold in milliseconds: requests at or over it are
    /// captured into the slow-query log and the flight recorder.
    /// [`None`] disables the log; 0 captures every request.
    pub slow_ms: Option<u64>,
    /// Emit a `stats` snapshot to stderr every this-many seconds while
    /// serving (the operator's drive-by view; [`None`] disables it).
    pub stats_interval: Option<u64>,
    /// After an external-signal drain, flush and `exit(0)` instead of
    /// returning (the CLI sets this; a reader blocked on stdin cannot be
    /// joined). Never affects EOF or `shutdown`-request paths.
    pub exit_on_signal: bool,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            workers: 1,
            pool: PoolConfig::default(),
            default_deadline_ms: None,
            default_step_budget: None,
            degrade_pending: 64,
            truncate_pending: 256,
            truncate_step_cap: 50_000,
            client_step_budget: None,
            retries: 1,
            chaos: false,
            fault: None,
            max_program_bytes: 4 * 1024 * 1024,
            trace: false,
            recorder_capacity: 256,
            slow_ms: None,
            stats_interval: None,
            exit_on_signal: false,
        }
    }
}

/// What one [`Server::serve`] run did (reported on stderr by the CLI).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServeSummary {
    /// Successful responses written.
    pub served: u64,
    /// Error responses written.
    pub errors: u64,
    /// Query panics caught (injected or real).
    pub panics: u64,
}

struct Job {
    id: Option<u64>,
    client: String,
    req: SliceRequest,
    admission: Admission,
    /// When the job entered the queue, for the slow-query log's
    /// queue-time stage breakdown.
    enqueued: Instant,
    out: SharedOut,
}

/// One tenant's live aggregation (under the observability lock).
#[derive(Default)]
struct TenantAgg {
    requests: u64,
    errors: u64,
    retries: u64,
    degraded: u64,
    shed: u64,
    spent_steps: u64,
    exit_hits: u64,
    exit_misses: u64,
    shared_hits: u64,
    latency: Histogram,
}

/// Wall-clock stage breakdown of one completed request, in microseconds
/// (plus the step spend charged for it).
struct ObservedTiming {
    queue_us: u64,
    exec_us: u64,
    spend: u64,
}

/// The observability plane's mutable state. One mutex, touched once per
/// completed request and once per `stats` snapshot — never while a query
/// runs, so an idle daemon (and the query itself) pays nothing for it.
#[derive(Default)]
struct Obs {
    /// Per-tenant tables, keyed by client name (sorted iteration gives
    /// the stats doc its deterministic row order).
    tenants: BTreeMap<String, TenantAgg>,
    /// Per-program latency histograms, keyed by pool hash.
    session_lat: BTreeMap<String, Histogram>,
    /// The slow-query log, oldest first, capped at [`SLOW_LOG_CAP`].
    slow: VecDeque<SlowQueryRow>,
}

struct Ack {
    id: Option<u64>,
    drained: usize,
    out: SharedOut,
}

#[derive(Default)]
struct Sched {
    /// Per-client FIFO queues, in first-seen client order; served
    /// round-robin from `rr`.
    queues: Vec<(String, VecDeque<Job>)>,
    rr: usize,
    pending: usize,
    in_flight: usize,
    accepting: bool,
    /// Cumulative step spend (graph nodes visited) per client.
    spent: FxHashMap<String, u64>,
}

/// What [`Server::ingest`] decided about one request line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Ingest {
    /// Keep reading.
    Continue,
    /// A `shutdown` request was accepted: stop reading and drain.
    Shutdown,
}

/// The long-lived daemon core. Drivable in-process (the chaos suite
/// feeds it a byte buffer) or from the CLI over stdin/socket.
pub struct Server {
    cfg: ServeConfig,
    telemetry: Telemetry,
    pool: Mutex<SessionPool>,
    sched: Mutex<Sched>,
    cv: Condvar,
    shutdown: Arc<AtomicBool>,
    input_done: AtomicBool,
    shutdown_ack: Mutex<Option<Ack>>,
    slice_seq: AtomicU64,
    served: AtomicU64,
    errors: AtomicU64,
    panics: AtomicU64,
    /// Always-on flight recorder ([`None`] when `recorder_capacity` is 0).
    recorder: Option<Arc<FlightRecorder>>,
    /// Per-tenant tables, per-session latency, slow-query log.
    obs: Mutex<Obs>,
    /// When the server was built, for `uptime_ms`.
    start: Instant,
}

impl Server {
    /// Builds a server; nothing runs until [`Server::serve`].
    pub fn new(cfg: ServeConfig) -> Server {
        let telemetry = if cfg.trace {
            Telemetry::enabled()
        } else {
            Telemetry::disabled()
        };
        let recorder = (cfg.recorder_capacity > 0)
            .then(|| Arc::new(FlightRecorder::new(cfg.recorder_capacity)));
        let mut pool = SessionPool::new(cfg.pool.clone(), telemetry.clone());
        pool.set_recorder(recorder.clone());
        Server {
            cfg,
            telemetry,
            pool: Mutex::new(pool),
            sched: Mutex::new(Sched {
                accepting: true,
                ..Sched::default()
            }),
            cv: Condvar::new(),
            shutdown: Arc::new(AtomicBool::new(false)),
            input_done: AtomicBool::new(false),
            shutdown_ack: Mutex::new(None),
            slice_seq: AtomicU64::new(0),
            served: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            panics: AtomicU64::new(0),
            recorder,
            obs: Mutex::new(Obs::default()),
            start: Instant::now(),
        }
    }

    fn flight(&self, kind: FlightKind, label: &str, a: u64, b: u64) {
        if let Some(rec) = &self.recorder {
            rec.record(kind, label, a, b);
        }
    }

    /// Attributes one error response to a tenant's table.
    fn tenant_err(&self, client: &str) {
        let mut obs = self.obs.lock().unwrap();
        obs.tenants.entry(client.to_string()).or_default().errors += 1;
    }

    /// The external shutdown flag; a signal handler stores `true` and
    /// the serve loop drains and exits. Clone freely.
    pub fn shutdown_flag(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.shutdown)
    }

    fn write_ok(&self, out: &SharedOut, line: &str) {
        self.served.fetch_add(1, Ordering::Relaxed);
        Self::write_raw(out, line);
    }

    fn write_err(&self, out: &SharedOut, id: Option<u64>, code: &str, message: &str) {
        self.errors.fetch_add(1, Ordering::Relaxed);
        Self::write_raw(out, &error_line(id, code, message));
    }

    fn write_raw(out: &SharedOut, line: &str) {
        let mut o = out.lock().unwrap();
        let _ = writeln!(o, "{line}");
        let _ = o.flush();
    }

    fn admission_for(&self, pending: usize) -> Admission {
        if pending >= self.cfg.truncate_pending {
            Admission::Truncate
        } else if pending >= self.cfg.degrade_pending {
            Admission::DegradeCi
        } else {
            Admission::Full
        }
    }

    fn sources_size(sources: &[SourceFile]) -> usize {
        sources.iter().map(|s| s.name.len() + s.text.len()).sum()
    }

    fn handle_load(&self, id: Option<u64>, sources: Vec<SourceFile>, out: &SharedOut) {
        let size = Self::sources_size(&sources);
        if size > self.cfg.max_program_bytes {
            self.write_err(
                out,
                id,
                "too_large",
                &format!(
                    "program is {size} bytes (limit {})",
                    self.cfg.max_program_bytes
                ),
            );
            return;
        }
        match self.pool.lock().unwrap().register(sources) {
            Ok(r) => self.write_ok(out, &load_line(id, &r.hash, r.cached, r.resident)),
            Err(e) => self.write_err(out, id, "compile", &e.to_string()),
        }
    }

    /// Answers a `reload` synchronously on the reader thread, like `load`:
    /// the pool swaps the entry's sources under its existing key and
    /// updates (or rebuilds) the session before the response is written,
    /// so every later query on that key sees the new program.
    fn handle_reload(
        &self,
        id: Option<u64>,
        program: String,
        sources: Vec<SourceFile>,
        out: &SharedOut,
    ) {
        let size = Self::sources_size(&sources);
        if size > self.cfg.max_program_bytes {
            self.write_err(
                out,
                id,
                "too_large",
                &format!(
                    "program is {size} bytes (limit {})",
                    self.cfg.max_program_bytes
                ),
            );
            return;
        }
        match self.pool.lock().unwrap().reload(&program, sources) {
            Ok(r) => self.write_ok(
                out,
                &reload_line(id, &r.hash, &r.content, r.rebuilt, &r.stats, r.resident),
            ),
            Err(PoolError::UnknownProgram) => self.write_err(
                out,
                id,
                "unknown_program",
                &format!("program {program:?} was never loaded"),
            ),
            Err(PoolError::Compile(e)) => self.write_err(out, id, "compile", &e.to_string()),
        }
    }

    fn status_snapshot(&self, pool: &SessionPool) -> StatusSnapshot {
        StatusSnapshot {
            programs: pool.programs(),
            live_sessions: pool.live_sessions(),
            quarantined: pool.quarantined(),
            resident: pool.resident_total(),
            evictions: pool.stats.evictions,
            rebuilds: pool.stats.rebuilds,
            served: self.served.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
            panics: self.panics.load(Ordering::Relaxed),
            pool_capacity: pool.capacity(),
            uptime_ms: self.start.elapsed().as_millis() as u64,
        }
    }

    fn handle_status(&self, id: Option<u64>, out: &SharedOut) {
        let snap = self.status_snapshot(&self.pool.lock().unwrap());
        let report = self.cfg.trace.then(|| self.telemetry.report().to_json());
        self.write_ok(out, &status_line(id, &snap, report.as_deref()));
    }

    /// Gathers the full observability snapshot. Pool and observability
    /// locks are taken one after the other, never nested, and never
    /// while a query is executing.
    fn stats_snapshot(&self) -> StatsSnapshot {
        let (status, mut sessions, pool_stats) = {
            let pool = self.pool.lock().unwrap();
            (self.status_snapshot(&pool), pool.session_rows(), pool.stats)
        };
        let obs = self.obs.lock().unwrap();
        for row in &mut sessions {
            if let Some(h) = obs.session_lat.get(&row.program) {
                row.latency_us = h.summary();
            }
        }
        let tenants = obs
            .tenants
            .iter()
            .map(|(client, t)| TenantRow {
                client: client.clone(),
                requests: t.requests,
                errors: t.errors,
                retries: t.retries,
                degraded: t.degraded,
                shed: t.shed,
                spent_steps: t.spent_steps,
                exit_hits: t.exit_hits,
                exit_misses: t.exit_misses,
                shared_hits: t.shared_hits,
                latency_us: t.latency.summary(),
            })
            .collect();
        let slow = obs.slow.iter().cloned().collect();
        drop(obs);
        let (recorded, recorder_capacity, events) = match &self.recorder {
            Some(rec) => (rec.recorded(), rec.capacity(), rec.tail(EVENT_TAIL)),
            None => (0, 0, Vec::new()),
        };
        StatsSnapshot {
            uptime_ms: status.uptime_ms,
            status,
            pool_hits: pool_stats.hits,
            pool_misses: pool_stats.misses,
            pool_builds: pool_stats.builds,
            pool_quarantines: pool_stats.quarantines,
            pool_reloads: pool_stats.reloads,
            pool_reloads_incremental: pool_stats.reloads_incremental,
            snapshot_hits: pool_stats.snapshot_hits,
            snapshot_misses: pool_stats.snapshot_misses,
            snapshot_writes: pool_stats.snapshot_writes,
            snapshot_discarded_corrupt: pool_stats.snapshot_discarded_corrupt,
            recorded,
            recorder_capacity,
            tenants,
            sessions,
            slow,
            events,
        }
    }

    fn handle_stats(&self, id: Option<u64>, out: &SharedOut) {
        self.write_ok(out, &stats_line(id, &self.stats_snapshot()));
    }

    /// A compact human rendering of the current snapshot, for the
    /// `--stats-interval` stderr ticker.
    pub fn stats_text(&self) -> String {
        let s = self.stats_snapshot();
        let mut out = format!(
            "thinslice-serve up {:.1}s · pool {}/{} sessions ({} quarantined, resident {}) · \
             served {} errors {} panics {} · recorder {}/{} events",
            s.uptime_ms as f64 / 1000.0,
            s.status.live_sessions,
            s.status.pool_capacity,
            s.status.quarantined,
            s.status.resident,
            s.status.served,
            s.status.errors,
            s.status.panics,
            s.recorded.min(s.recorder_capacity as u64),
            s.recorder_capacity,
        );
        if !s.tenants.is_empty() {
            out.push_str(&format!(
                "\n  {:<16} {:>6} {:>5} {:>5} {:>5} {:>5} {:>10} {:>9} {:>9} {:>9}",
                "CLIENT", "REQ", "ERR", "RETRY", "DEGR", "SHED", "STEPS", "p50us", "p95us", "maxus"
            ));
            for t in &s.tenants {
                out.push_str(&format!(
                    "\n  {:<16} {:>6} {:>5} {:>5} {:>5} {:>5} {:>10} {:>9.0} {:>9.0} {:>9.0}",
                    t.client,
                    t.requests,
                    t.errors,
                    t.retries,
                    t.degraded,
                    t.shed,
                    t.spent_steps,
                    t.latency_us.p50,
                    t.latency_us.p95,
                    t.latency_us.max,
                ));
            }
        }
        if !s.slow.is_empty() {
            out.push_str(&format!("\n  slow queries ({}):", s.slow.len()));
            for q in &s.slow {
                out.push_str(&format!(
                    "\n    id={} client={} {}/{} {} queue {}us exec {}us total {}us spend {}",
                    q.id.map_or("null".to_string(), |n| n.to_string()),
                    q.client,
                    q.kind,
                    q.engine,
                    q.completeness,
                    q.queue_us,
                    q.exec_us,
                    q.total_us,
                    q.spend,
                ));
            }
        }
        out
    }

    fn handle_shutdown(&self, id: Option<u64>, out: &SharedOut) {
        let mut sched = self.sched.lock().unwrap();
        if !sched.accepting {
            drop(sched);
            self.write_err(out, id, "shutting_down", "shutdown already in progress");
            return;
        }
        sched.accepting = false;
        let drained = sched.pending + sched.in_flight;
        drop(sched);
        *self.shutdown_ack.lock().unwrap() = Some(Ack {
            id,
            drained,
            out: out.clone(),
        });
        self.cv.notify_all();
    }

    fn enqueue_slice(&self, id: Option<u64>, client: String, req: SliceRequest, out: &SharedOut) {
        if let ProgramRef::Inline(sources) = &req.program {
            let size = Self::sources_size(sources);
            if size > self.cfg.max_program_bytes {
                self.tenant_err(&client);
                self.write_err(
                    out,
                    id,
                    "too_large",
                    &format!(
                        "program is {size} bytes (limit {})",
                        self.cfg.max_program_bytes
                    ),
                );
                return;
            }
        }
        let mut chaos_panics = req.chaos_panics;
        if chaos_panics > 0 && !self.cfg.chaos {
            self.tenant_err(&client);
            self.write_err(
                out,
                id,
                "chaos_disabled",
                "request carries a chaos fault but the server was not started with --chaos",
            );
            return;
        }
        let seq = self.slice_seq.fetch_add(1, Ordering::Relaxed);
        if let Some(fault) = &self.cfg.fault {
            if fault.query as u64 == seq {
                chaos_panics = chaos_panics.max(fault.attempts);
            }
        }
        let mut req = req;
        req.chaos_panics = chaos_panics;

        let mut sched = self.sched.lock().unwrap();
        if !sched.accepting {
            drop(sched);
            self.tenant_err(&client);
            self.write_err(out, id, "shutting_down", "server is draining; resend later");
            return;
        }
        let admission = self.admission_for(sched.pending);
        let job = Job {
            id,
            client: client.clone(),
            req,
            admission,
            enqueued: Instant::now(),
            out: out.clone(),
        };
        match sched.queues.iter_mut().find(|(c, _)| *c == client) {
            Some((_, q)) => q.push_back(job),
            None => sched.queues.push((client, VecDeque::from([job]))),
        }
        sched.pending += 1;
        drop(sched);
        self.cv.notify_all();
    }

    /// Handles one request line: synchronous ops are answered in place,
    /// slice queries are queued for the workers. Total over arbitrary
    /// input — every failure is a structured error response.
    pub fn ingest(&self, line: &str, out: &SharedOut) -> Ingest {
        match parse_request(line) {
            Err(e) => {
                self.write_err(out, e.id, e.code, &e.message);
                Ingest::Continue
            }
            Ok(req) => match req.op {
                Op::Load { sources } => {
                    self.handle_load(req.id, sources, out);
                    Ingest::Continue
                }
                Op::Reload { program, sources } => {
                    self.handle_reload(req.id, program, sources, out);
                    Ingest::Continue
                }
                Op::Status => {
                    self.handle_status(req.id, out);
                    Ingest::Continue
                }
                Op::Stats => {
                    self.handle_stats(req.id, out);
                    Ingest::Continue
                }
                Op::Shutdown => {
                    self.handle_shutdown(req.id, out);
                    Ingest::Shutdown
                }
                Op::Slice(sr) => {
                    self.enqueue_slice(req.id, req.client, sr, out);
                    Ingest::Continue
                }
            },
        }
    }

    fn pop_job(sched: &mut Sched) -> Option<Job> {
        if sched.pending == 0 || sched.queues.is_empty() {
            return None;
        }
        let n = sched.queues.len();
        for step in 0..n {
            let i = (sched.rr + step) % n;
            if let Some(job) = sched.queues[i].1.pop_front() {
                sched.rr = (i + 1) % n;
                sched.pending -= 1;
                return Some(job);
            }
        }
        None
    }

    fn worker_loop(&self) {
        loop {
            let job = {
                let mut sched = self.sched.lock().unwrap();
                loop {
                    if let Some(job) = Self::pop_job(&mut sched) {
                        sched.in_flight += 1;
                        break job;
                    }
                    if !sched.accepting {
                        return;
                    }
                    sched = self.cv.wait(sched).unwrap();
                }
            };
            self.execute(job);
            let mut sched = self.sched.lock().unwrap();
            sched.in_flight -= 1;
            drop(sched);
            self.cv.notify_all();
        }
    }

    /// Resolves the job's program to a pool hash, registering inline
    /// sources on first use.
    fn resolve_program(&self, job: &Job) -> Result<String, (&'static str, String)> {
        match &job.req.program {
            ProgramRef::Hash(h) => {
                if self.pool.lock().unwrap().contains(h) {
                    Ok(h.clone())
                } else {
                    Err((
                        "unknown_program",
                        format!("program {h:?} is not registered; send a load request first"),
                    ))
                }
            }
            ProgramRef::Inline(sources) => {
                match self.pool.lock().unwrap().register(sources.clone()) {
                    Ok(r) => Ok(r.hash),
                    Err(e) => Err(("compile", e.to_string())),
                }
            }
        }
    }

    fn execute(&self, job: Job) {
        let started = Instant::now();
        let queue_us = started.duration_since(job.enqueued).as_micros() as u64;
        let hash = match self.resolve_program(&job) {
            Ok(h) => h,
            Err((code, msg)) => {
                self.tenant_err(&job.client);
                self.write_err(&job.out, job.id, code, &msg);
                return;
            }
        };
        // A client over its cumulative allowance is load-shed to the
        // truncate rung; other tenants are unaffected.
        let mut admission = job.admission;
        if let Some(allowance) = self.cfg.client_step_budget {
            let sched = self.sched.lock().unwrap();
            if sched.spent.get(&job.client).copied().unwrap_or(0) >= allowance {
                admission = Admission::Truncate;
            }
        }
        let admission_kind = match admission {
            Admission::Full => FlightKind::RequestAdmitted,
            Admission::DegradeCi => FlightKind::RequestDegraded,
            Admission::Truncate => FlightKind::RequestShed,
        };
        self.flight(admission_kind, &job.client, job.id.unwrap_or(0), queue_us);

        let mut attempt: u32 = 0;
        loop {
            let mut co = match self.pool.lock().unwrap().checkout(&hash) {
                Ok(co) => co,
                Err(PoolError::UnknownProgram) => {
                    self.tenant_err(&job.client);
                    self.write_err(
                        &job.out,
                        job.id,
                        "unknown_program",
                        &format!("program {hash:?} is not registered"),
                    );
                    return;
                }
                Err(PoolError::Compile(e)) => {
                    self.tenant_err(&job.client);
                    self.write_err(&job.out, job.id, "compile", &e.to_string());
                    return;
                }
            };
            if job.req.chaos_panics > attempt {
                self.flight(
                    FlightKind::FaultInjected,
                    &job.client,
                    job.id.unwrap_or(0),
                    u64::from(attempt),
                );
            }
            let memo_before = co.session().memo_stats();
            let outcome = catch_unwind(AssertUnwindSafe(|| {
                if job.req.chaos_panics > attempt {
                    panic!("injected chaos panic (attempt {attempt})");
                }
                self.run_query(co.session(), &job.req, admission)
            }));
            match outcome {
                Ok(Ok((slice, engine, stmts, spend))) => {
                    let memo = co.session().memo_stats().since(&memo_before);
                    self.pool.lock().unwrap().checkin(co);
                    {
                        let mut sched = self.sched.lock().unwrap();
                        *sched.spent.entry(job.client.clone()).or_insert(0) += spend;
                    }
                    let degraded =
                        slice.degraded || (job.req.engine == Engine::Cs && engine == Engine::Ci);
                    if let Completeness::Truncated { frontier, .. } = slice.completeness {
                        self.flight(
                            FlightKind::BudgetExhausted,
                            &job.client,
                            frontier as u64,
                            spend,
                        );
                    }
                    let timing = ObservedTiming {
                        queue_us,
                        exec_us: started.elapsed().as_micros() as u64,
                        spend,
                    };
                    self.observe(
                        &job, &hash, admission, engine, &slice, attempt, memo, timing,
                    );
                    self.write_ok(
                        &job.out,
                        &slice_line(
                            job.id,
                            &hash,
                            engine,
                            job.req.kind,
                            admission,
                            degraded,
                            slice.completeness,
                            &stmts,
                        ),
                    );
                    return;
                }
                Ok(Err(msg)) => {
                    self.pool.lock().unwrap().checkin(co);
                    self.tenant_err(&job.client);
                    self.write_err(&job.out, job.id, "seed", &msg);
                    return;
                }
                Err(payload) => {
                    self.panics.fetch_add(1, Ordering::Relaxed);
                    self.pool.lock().unwrap().quarantine(co);
                    attempt += 1;
                    if attempt > self.cfg.retries {
                        self.tenant_err(&job.client);
                        self.write_err(
                            &job.out,
                            job.id,
                            "panic",
                            &format!(
                                "query panicked on {attempt} attempts ({}); session \
                                 quarantined and will rebuild on the next request",
                                panic_message(payload.as_ref())
                            ),
                        );
                        return;
                    }
                    // Retry: the next checkout rebuilds the quarantined
                    // session from sources.
                }
            }
        }
    }

    /// Folds one completed request into the per-tenant and per-session
    /// tables, and into the slow-query log when it crossed `slow_ms`.
    /// Runs after the query, outside every other lock — the response
    /// bytes are already fixed, so observation cannot perturb them.
    #[allow(clippy::too_many_arguments)]
    fn observe(
        &self,
        job: &Job,
        hash: &str,
        admission: Admission,
        engine: Engine,
        slice: &SliceResult,
        retries: u32,
        memo: thinslice::MemoStats,
        timing: ObservedTiming,
    ) {
        let total_us = timing.queue_us + timing.exec_us;
        let degraded = slice.degraded || (job.req.engine == Engine::Cs && engine == Engine::Ci);
        {
            let mut obs = self.obs.lock().unwrap();
            let t = obs.tenants.entry(job.client.clone()).or_default();
            t.requests += 1;
            t.retries += u64::from(retries);
            if degraded {
                t.degraded += 1;
            }
            if admission == Admission::Truncate {
                t.shed += 1;
            }
            t.spent_steps += timing.spend;
            t.exit_hits += memo.exit_hits;
            t.exit_misses += memo.exit_misses;
            t.shared_hits += memo.shared_hits;
            t.latency.record(total_us as f64);
            obs.session_lat
                .entry(hash.to_string())
                .or_default()
                .record(total_us as f64);
        }
        let Some(slow_ms) = self.cfg.slow_ms else {
            return;
        };
        if total_us < slow_ms.saturating_mul(1000) {
            return;
        }
        self.flight(FlightKind::SlowQuery, &job.client, total_us, timing.spend);
        let row = SlowQueryRow {
            id: job.id,
            client: job.client.clone(),
            program: hash.to_string(),
            kind: kind_str(job.req.kind).to_string(),
            engine: engine_str(engine).to_string(),
            admission: admission.as_str().to_string(),
            completeness: match slice.completeness {
                Completeness::Complete => "complete".to_string(),
                Completeness::Truncated { .. } => "truncated".to_string(),
            },
            seeds: job.req.seeds.len(),
            queue_us: timing.queue_us,
            exec_us: timing.exec_us,
            total_us,
            spend: timing.spend,
        };
        let mut obs = self.obs.lock().unwrap();
        if obs.slow.len() == SLOW_LOG_CAP {
            obs.slow.pop_front();
        }
        obs.slow.push_back(row);
    }

    /// Runs one query attempt on a checked-out session. Returns the
    /// result, the engine actually used, the canonical statement lines,
    /// and the step spend charged to the client.
    #[allow(clippy::type_complexity)]
    fn run_query(
        &self,
        session: &mut thinslice::AnalysisSession,
        req: &SliceRequest,
        admission: Admission,
    ) -> Result<(SliceResult, Engine, Vec<String>, u64), String> {
        let mut seeds = Vec::new();
        for sr in &req.seeds {
            match session.seed_at_line(&sr.file, sr.line) {
                Some(s) => seeds.extend(s),
                None => return Err(format!("no statements at {}:{}", sr.file, sr.line)),
            }
        }
        let engine = match (admission, req.engine) {
            (Admission::DegradeCi | Admission::Truncate, Engine::Cs) => Engine::Ci,
            (_, e) => e,
        };
        let mut budget = Budget::default();
        if let Some(ms) = req.deadline_ms.or(self.cfg.default_deadline_ms) {
            budget = budget.with_deadline(Duration::from_millis(ms));
        }
        if let Some(steps) = req.step_budget.or(self.cfg.default_step_budget) {
            budget = budget.with_step_limit(steps);
        }
        if admission == Admission::Truncate {
            budget = budget.cap_steps(self.cfg.truncate_step_cap);
        }
        let policy = QueryPolicy {
            budget: (!budget.is_unlimited()).then_some(budget),
            degrade: req.degrade,
        };
        let query = Query::new(seeds, req.kind, engine).with_policy(policy);
        let slice = session.query(&query);
        let stmts = report::stmt_lines(session.program(), &slice.stmts);
        let spend = slice.nodes.len() as u64;
        Ok((slice, engine, stmts, spend))
    }

    /// Emits the `--stats-interval` stderr snapshot when one is due.
    /// Costs a clock read per loop tick when disabled or not yet due —
    /// the zero-overhead-when-idle invariant in practice.
    fn stats_tick(&self, last: &mut Instant) {
        let Some(secs) = self.cfg.stats_interval else {
            return;
        };
        if last.elapsed() < Duration::from_secs(secs.max(1)) {
            return;
        }
        *last = Instant::now();
        eprintln!("{}", self.stats_text());
    }

    fn begin_drain(&self) {
        self.sched.lock().unwrap().accepting = false;
        self.cv.notify_all();
    }

    fn wait_drained(&self) {
        let mut sched = self.sched.lock().unwrap();
        while sched.pending > 0 || sched.in_flight > 0 {
            sched = self.cv.wait(sched).unwrap();
        }
    }

    fn summary(&self) -> ServeSummary {
        ServeSummary {
            served: self.served.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
            panics: self.panics.load(Ordering::Relaxed),
        }
    }

    /// Runs the daemon over one input stream until EOF, a `shutdown`
    /// request, or the external [`Server::shutdown_flag`]. All three
    /// paths stop intake, drain every queued and in-flight query (each
    /// still receives its response), then return the run's summary —
    /// after writing the `shutdown` acknowledgement when one is owed.
    pub fn serve<R: BufRead + Send>(&self, input: R, out: SharedOut) -> ServeSummary {
        std::thread::scope(|scope| {
            for _ in 0..self.cfg.workers.max(1) {
                scope.spawn(|| self.worker_loop());
            }
            {
                let out = out.clone();
                scope.spawn(move || {
                    self.reader_loop(input, &out);
                    self.input_done.store(true, Ordering::Relaxed);
                    self.cv.notify_all();
                });
            }
            // Wait for the input to end or the signal flag; the timeout
            // bounds how long a signal waits behind a blocked read.
            let mut last_snapshot = Instant::now();
            loop {
                let sched = self.sched.lock().unwrap();
                if self.input_done.load(Ordering::Relaxed) || self.shutdown.load(Ordering::Relaxed)
                {
                    break;
                }
                let _ = self
                    .cv
                    .wait_timeout(sched, Duration::from_millis(25))
                    .unwrap();
                self.stats_tick(&mut last_snapshot);
            }
            let signalled =
                self.shutdown.load(Ordering::Relaxed) && !self.input_done.load(Ordering::Relaxed);
            self.begin_drain();
            self.wait_drained();
            // Persist every live session so a restarted daemon
            // warm-starts with all forced stages intact.
            self.pool.lock().unwrap().persist_all();
            if let Some(ack) = self.shutdown_ack.lock().unwrap().take() {
                self.write_ok(&ack.out, &shutdown_line(ack.id, ack.drained));
            }
            let summary = self.summary();
            if signalled && self.cfg.exit_on_signal {
                // The reader thread may be blocked on stdin forever; the
                // scope could never join it. Everything is drained and
                // flushed, so exiting the process is the clean option.
                let _ = out.lock().unwrap().flush();
                eprintln!(
                    "thinslice-serve: signal received; drained in-flight queries \
                     (served {}, errors {}, panics {}); exiting",
                    summary.served, summary.errors, summary.panics
                );
                std::process::exit(0);
            }
            summary
        })
    }

    /// Serves a Unix-domain socket: each accepted connection gets its own
    /// reader thread and writes responses back on that connection, while
    /// all connections share the worker pool, session pool, and admission
    /// state. A `shutdown` request from any client — or the external
    /// [`Server::shutdown_flag`] — stops intake on every connection,
    /// drains, acknowledges, and returns.
    #[cfg(unix)]
    pub fn serve_listener(&self, listener: std::os::unix::net::UnixListener) -> ServeSummary {
        // Non-blocking accept so the loop can observe the shutdown flag.
        let _ = listener.set_nonblocking(true);
        std::thread::scope(|scope| {
            for _ in 0..self.cfg.workers.max(1) {
                scope.spawn(|| self.worker_loop());
            }
            let mut last_snapshot = Instant::now();
            loop {
                if self.shutdown.load(Ordering::Relaxed) || !self.sched.lock().unwrap().accepting {
                    break;
                }
                self.stats_tick(&mut last_snapshot);
                match listener.accept() {
                    Ok((stream, _)) => {
                        let out: SharedOut = match stream.try_clone() {
                            Ok(w) => Arc::new(Mutex::new(w)),
                            Err(_) => continue,
                        };
                        scope.spawn(move || self.conn_loop(stream, &out));
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(25));
                    }
                    Err(_) => break,
                }
            }
            self.begin_drain();
            self.wait_drained();
            self.pool.lock().unwrap().persist_all();
            if let Some(ack) = self.shutdown_ack.lock().unwrap().take() {
                self.write_ok(&ack.out, &shutdown_line(ack.id, ack.drained));
            }
            self.summary()
        })
    }

    /// One socket connection's read loop: bounded lines, lossy UTF-8,
    /// oversized lines discarded after a structured error. Reads carry a
    /// short timeout so the loop can notice a daemon-wide drain even
    /// while its client is idle.
    #[cfg(unix)]
    fn conn_loop(&self, stream: std::os::unix::net::UnixStream, out: &SharedOut) {
        use crate::protocol::MAX_LINE_BYTES;
        let _ = stream.set_nonblocking(false);
        let _ = stream.set_read_timeout(Some(Duration::from_millis(100)));
        let mut reader = std::io::BufReader::new(stream);
        let mut buf: Vec<u8> = Vec::new();
        let mut skipping = false; // discarding the rest of an oversized line
        loop {
            if self.shutdown.load(Ordering::Relaxed) || !self.sched.lock().unwrap().accepting {
                return;
            }
            let (consumed, line_end) = {
                let chunk = match reader.fill_buf() {
                    Ok([]) => return, // client disconnected
                    Ok(c) => c,
                    Err(e)
                        if matches!(
                            e.kind(),
                            std::io::ErrorKind::WouldBlock
                                | std::io::ErrorKind::TimedOut
                                | std::io::ErrorKind::Interrupted
                        ) =>
                    {
                        continue;
                    }
                    Err(_) => return,
                };
                let (consumed, line_end) = match chunk.iter().position(|&b| b == b'\n') {
                    Some(pos) => (pos + 1, true),
                    None => (chunk.len(), false),
                };
                if !skipping {
                    buf.extend_from_slice(&chunk[..consumed]);
                }
                (consumed, line_end)
            };
            reader.consume(consumed);
            if !line_end {
                if !skipping && buf.len() > MAX_LINE_BYTES {
                    self.write_err(
                        out,
                        None,
                        "too_large",
                        &format!("request line exceeds {MAX_LINE_BYTES} bytes"),
                    );
                    buf.clear();
                    skipping = true;
                }
                continue;
            }
            if skipping {
                skipping = false;
                continue;
            }
            if buf.len().saturating_sub(1) > MAX_LINE_BYTES {
                self.write_err(
                    out,
                    None,
                    "too_large",
                    &format!("request line exceeds {MAX_LINE_BYTES} bytes"),
                );
                buf.clear();
                continue;
            }
            let stop = {
                let text = String::from_utf8_lossy(&buf);
                let line = text.trim_end_matches(['\n', '\r']);
                !line.trim().is_empty() && self.ingest(line, out) == Ingest::Shutdown
            };
            buf.clear();
            if stop {
                return;
            }
        }
    }

    /// Reads raw bytes line by line (bounded, lossy UTF-8) and ingests
    /// each. Oversized lines are answered and skipped without being
    /// buffered whole; invalid UTF-8 becomes a parse error response.
    fn reader_loop<R: BufRead>(&self, mut input: R, out: &SharedOut) {
        use crate::protocol::MAX_LINE_BYTES;
        let mut buf: Vec<u8> = Vec::new();
        loop {
            if self.shutdown.load(Ordering::Relaxed) {
                return;
            }
            buf.clear();
            let mut limited = (&mut input).take((MAX_LINE_BYTES + 1) as u64);
            match limited.read_until(b'\n', &mut buf) {
                Ok(0) => return, // EOF
                Ok(_) => {
                    let hit_cap = buf.len() > MAX_LINE_BYTES
                        || (buf.len() == MAX_LINE_BYTES + 1 && buf.last() != Some(&b'\n'));
                    if hit_cap && buf.last() != Some(&b'\n') {
                        self.write_err(
                            out,
                            None,
                            "too_large",
                            &format!("request line exceeds {MAX_LINE_BYTES} bytes"),
                        );
                        if !skip_to_newline(&mut input) {
                            return;
                        }
                        continue;
                    }
                    let text = String::from_utf8_lossy(&buf);
                    let line = text.trim_end_matches(['\n', '\r']);
                    if line.trim().is_empty() {
                        continue;
                    }
                    if let Ingest::Shutdown = self.ingest(line, out) {
                        return;
                    }
                }
                Err(_) => return, // unrecoverable I/O error on the stream
            }
        }
    }
}

/// Discards input up to and including the next newline; `false` on EOF.
fn skip_to_newline<R: BufRead>(input: &mut R) -> bool {
    let mut byte = [0u8; 1];
    loop {
        match input.read(&mut byte) {
            Ok(0) | Err(_) => return false,
            Ok(_) if byte[0] == b'\n' => return true,
            Ok(_) => {}
        }
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}
