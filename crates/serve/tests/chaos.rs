//! Chaos suite for the slice server.
//!
//! The contract under test (ISSUE 7 acceptance criteria): under injected
//! panics, deadline storms, oversized programs, and truncated/garbage
//! request lines, the daemon never exits, quarantined sessions rebuild on
//! the next request, every non-faulted response is bit-identical to the
//! same request served by a fault-free daemon, and graceful shutdown
//! drains all in-flight queries.
//!
//! Determinism ground rules: slice and load responses carry no timing or
//! load-dependent fields, so they are compared byte-for-byte across runs.
//! `status` and `shutdown` responses intentionally report load-dependent
//! counters (serve order, drain depth) and are excluded from bit-identity
//! comparisons — their *presence* is still asserted.

use std::io::{Cursor, Write};
use std::sync::{Arc, Mutex};

use thinslice::FaultInjection;
use thinslice_serve::pool::PoolConfig;
use thinslice_serve::protocol::validate_response_line;
use thinslice_serve::{ServeConfig, ServeSummary, Server};
use thinslice_util::telemetry::Json;

/// A shared byte sink the server writes response lines into.
#[derive(Clone, Default)]
struct Sink(Arc<Mutex<Vec<u8>>>);

impl Write for Sink {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap().write(buf)
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

/// Runs one scripted server session; returns (response lines, summary).
/// Every response line is schema-validated on the way out.
fn run_script(cfg: ServeConfig, script: &[String]) -> (Vec<String>, ServeSummary) {
    let sink = Sink::default();
    let out: thinslice_serve::SharedOut = Arc::new(Mutex::new(sink.clone()));
    let server = Server::new(cfg);
    let input = script.join("\n") + "\n";
    let summary = server.serve(Cursor::new(input.into_bytes()), out);
    let bytes = sink.0.lock().unwrap().clone();
    let lines: Vec<String> = String::from_utf8(bytes)
        .expect("responses are UTF-8")
        .lines()
        .map(str::to_string)
        .collect();
    for line in &lines {
        validate_response_line(line).unwrap_or_else(|e| panic!("invalid response {line:?}: {e}"));
    }
    (lines, summary)
}

/// Feeds a script one line at a time, yielding line N+1 only once N
/// responses are in the sink. Synchronous ops (load/reload/stats) are
/// handled inline on the reader thread while slice queries run on
/// workers, so an unpaced script can race a reload against a slice that
/// is still checked out; lockstep pacing makes such scripts
/// deterministic. Requires every request to produce exactly one
/// response line.
struct LockstepInput {
    lines: Vec<Vec<u8>>,
    next: usize,
    sink: Sink,
    pending: Vec<u8>,
}

impl std::io::Read for LockstepInput {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        if self.pending.is_empty() {
            if self.next >= self.lines.len() {
                return Ok(0);
            }
            loop {
                let answered = self
                    .sink
                    .0
                    .lock()
                    .unwrap()
                    .iter()
                    .filter(|b| **b == b'\n')
                    .count();
                if answered >= self.next {
                    break;
                }
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
            self.pending = self.lines[self.next].clone();
            self.pending.push(b'\n');
            self.next += 1;
        }
        let n = buf.len().min(self.pending.len());
        buf[..n].copy_from_slice(&self.pending[..n]);
        self.pending.drain(..n);
        Ok(n)
    }
}

/// [`run_script`], but each request waits for the previous response.
fn run_script_lockstep(cfg: ServeConfig, script: &[String]) -> (Vec<String>, ServeSummary) {
    let sink = Sink::default();
    let out: thinslice_serve::SharedOut = Arc::new(Mutex::new(sink.clone()));
    let server = Server::new(cfg);
    let input = LockstepInput {
        lines: script.iter().map(|l| l.clone().into_bytes()).collect(),
        next: 0,
        sink: sink.clone(),
        pending: Vec::new(),
    };
    let summary = server.serve(std::io::BufReader::new(input), out);
    let bytes = sink.0.lock().unwrap().clone();
    let lines: Vec<String> = String::from_utf8(bytes)
        .expect("responses are UTF-8")
        .lines()
        .map(str::to_string)
        .collect();
    for line in &lines {
        validate_response_line(line).unwrap_or_else(|e| panic!("invalid response {line:?}: {e}"));
    }
    (lines, summary)
}

/// Indexes responses by id (every scripted request carries a unique id).
fn by_id(lines: &[String]) -> std::collections::BTreeMap<u64, String> {
    let mut map = std::collections::BTreeMap::new();
    for line in lines {
        let v = Json::parse(line).unwrap();
        if let Some(id) = v.get("id").and_then(Json::as_u64) {
            assert!(
                map.insert(id, line.clone()).is_none(),
                "duplicate response for id {id}"
            );
        }
    }
    map
}

fn field(line: &str, key: &str) -> Json {
    Json::parse(line)
        .unwrap()
        .get(key)
        .cloned()
        .unwrap_or(Json::Null)
}

fn program(n: u32) -> String {
    // A little call structure so CS and CI genuinely differ in work done.
    format!(
        "class Main {{ static int id(int a) {{ return a; }} \
         static void main() {{\nint x = {n};\nint y = Main.id(x) + {n};\nint z = y * 2;\nprint(z);\n}} }}"
    )
}

fn src_json(n: u32) -> String {
    let text = program(n)
        .replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n");
    format!("[{{\"name\":\"p{n}.mj\",\"text\":\"{text}\"}}]")
}

fn load(id: u64, n: u32) -> String {
    format!(
        "{{\"op\":\"load\",\"id\":{id},\"sources\":{}}}",
        src_json(n)
    )
}

fn slice(id: u64, n: u32, line: u32, extra: &str) -> String {
    format!(
        "{{\"op\":\"slice\",\"id\":{id},\"sources\":{},\"seed\":{{\"file\":\"p{n}.mj\",\"line\":{line}}}{extra}}}",
        src_json(n)
    )
}

fn shutdown(id: u64) -> String {
    format!("{{\"op\":\"shutdown\",\"id\":{id}}}")
}

fn chaos_cfg() -> ServeConfig {
    ServeConfig {
        chaos: true,
        ..ServeConfig::default()
    }
}

#[test]
fn garbage_and_truncated_lines_get_structured_errors_not_disconnects() {
    let script = vec![
        "{not json at all".to_string(),
        "][".to_string(),
        "42".to_string(),
        "\"just a string\"".to_string(),
        r#"{"op":"warp","id":90}"#.to_string(),
        r#"{"op":"slice","id":91}"#.to_string(),
        // Truncated mid-object, as if the client died mid-write.
        r#"{"op":"slice","id":92,"sources":[{"name":"t.mj","te"#.to_string(),
        // The daemon must still serve real work after all of that.
        load(1, 1),
        slice(2, 1, 4, ""),
        shutdown(3),
    ];
    let (lines, summary) = run_script(ServeConfig::default(), &script);
    assert_eq!(lines.len(), script.len(), "one response per request line");
    assert_eq!(summary.errors, 7);
    assert_eq!(summary.served, 3);
    let map = by_id(&lines);
    assert_eq!(field(&map[&90], "ok"), Json::Bool(false));
    assert_eq!(field(&map[&91], "ok"), Json::Bool(false));
    assert_eq!(field(&map[&2], "ok"), Json::Bool(true));
    assert_eq!(
        field(&map[&2], "completeness"),
        Json::Str("complete".into())
    );
}

#[test]
fn injected_panic_quarantines_rebuilds_and_siblings_stay_bit_identical() {
    // Request 4 panics on more attempts than the server retries, so it
    // hard-fails; request 5 re-queries the same program afterwards.
    let faulted: Vec<String> = vec![
        load(1, 1),
        slice(2, 1, 3, ""),
        slice(3, 2, 4, ""),
        slice(4, 1, 4, r#","chaos":{"panics":3}"#),
        slice(5, 1, 4, ""),
        shutdown(6),
    ];
    let clean: Vec<String> = faulted
        .iter()
        .map(|l| l.replace(r#","chaos":{"panics":3}"#, ""))
        .collect();

    let (f_lines, f_summary) = run_script(chaos_cfg(), &faulted);
    let (c_lines, c_summary) = run_script(chaos_cfg(), &clean);
    let f = by_id(&f_lines);
    let c = by_id(&c_lines);

    // The faulted request hard-failed with a structured panic error...
    assert_eq!(field(&f[&4], "ok"), Json::Bool(false));
    let err = field(&f[&4], "error");
    assert_eq!(err.get("code").and_then(Json::as_str), Some("panic"));
    assert!(err
        .get("message")
        .and_then(Json::as_str)
        .unwrap()
        .contains("quarantined"));
    assert_eq!(f_summary.panics, 2, "initial attempt + one retry");
    assert_eq!(c_summary.panics, 0);

    // ...the daemon stayed up, the quarantined session rebuilt, and every
    // non-faulted response is bit-identical to the fault-free run.
    for id in [1u64, 2, 3, 5] {
        assert_eq!(f[&id], c[&id], "response {id} must be bit-identical");
    }
    assert!(
        f.contains_key(&6) && c.contains_key(&6),
        "both runs drained"
    );
}

#[test]
fn single_panic_recovers_via_retry_with_identical_response() {
    // One injected panic is absorbed by the retry on a rebuilt session:
    // the client sees the same successful response as a fault-free run.
    let faulted = vec![
        load(1, 1),
        slice(2, 1, 4, r#","chaos":{"panics":1}"#),
        shutdown(3),
    ];
    let clean: Vec<String> = faulted
        .iter()
        .map(|l| l.replace(r#","chaos":{"panics":1}"#, ""))
        .collect();
    let (f_lines, f_summary) = run_script(chaos_cfg(), &faulted);
    let (c_lines, _) = run_script(chaos_cfg(), &clean);
    assert_eq!(f_summary.panics, 1);
    assert_eq!(f_summary.errors, 0, "the retry hid the fault entirely");
    assert_eq!(by_id(&f_lines)[&2], by_id(&c_lines)[&2]);
}

#[test]
fn config_level_fault_injection_extends_batch_fault_shape() {
    // The PR 2 FaultInjection shape, applied to the server's request
    // path: the 1st slice request (0-based) panics once and recovers.
    let script = vec![
        load(1, 1),
        slice(2, 1, 3, ""),
        slice(3, 1, 4, ""),
        shutdown(4),
    ];
    let cfg = ServeConfig {
        fault: Some(FaultInjection {
            query: 1,
            attempts: 1,
        }),
        ..ServeConfig::default()
    };
    let (f_lines, f_summary) = run_script(cfg, &script);
    let (c_lines, _) = run_script(ServeConfig::default(), &script);
    assert_eq!(f_summary.panics, 1);
    assert_eq!(f_summary.errors, 0);
    let (f, c) = (by_id(&f_lines), by_id(&c_lines));
    for id in [1u64, 2, 3] {
        assert_eq!(f[&id], c[&id]);
    }
}

#[test]
fn chaos_fields_are_rejected_when_chaos_mode_is_off() {
    let script = vec![slice(1, 1, 3, r#","chaos":{"panics":1}"#), shutdown(2)];
    let (lines, summary) = run_script(ServeConfig::default(), &script);
    let map = by_id(&lines);
    assert_eq!(field(&map[&1], "ok"), Json::Bool(false));
    assert_eq!(
        field(&map[&1], "error").get("code").and_then(Json::as_str),
        Some("chaos_disabled")
    );
    assert_eq!(summary.panics, 0);
}

#[test]
fn deadline_storm_never_takes_the_daemon_down() {
    let mut script = vec![load(1, 1)];
    for i in 0..40 {
        script.push(slice(10 + i, 1, 4, r#","deadline_ms":0"#));
    }
    script.push(slice(90, 1, 4, ""));
    script.push(shutdown(99));
    let (lines, summary) = run_script(ServeConfig::default(), &script);
    assert_eq!(lines.len(), script.len(), "every request answered");
    assert_eq!(
        summary.errors, 0,
        "deadline exhaustion degrades, never errors"
    );
    let map = by_id(&lines);
    for i in 0..40u64 {
        assert_eq!(field(&map[&(10 + i)], "ok"), Json::Bool(true));
    }
    // After the storm the daemon still serves an ungoverned query fully.
    assert_eq!(
        field(&map[&90], "completeness"),
        Json::Str("complete".into())
    );
    assert!(
        map.contains_key(&99),
        "shutdown acknowledged after the storm"
    );
}

#[test]
fn oversized_programs_are_refused_structurally() {
    let cfg = ServeConfig {
        max_program_bytes: 256,
        ..ServeConfig::default()
    };
    let big = "x".repeat(4096);
    let script = vec![
        format!(
            "{{\"op\":\"load\",\"id\":1,\"sources\":[{{\"name\":\"big.mj\",\"text\":\"{big}\"}}]}}"
        ),
        format!(
            "{{\"op\":\"slice\",\"id\":2,\"sources\":[{{\"name\":\"big.mj\",\"text\":\"{big}\"}}],\"seed\":{{\"file\":\"big.mj\",\"line\":1}}}}"
        ),
        slice(3, 1, 4, ""),
        shutdown(4),
    ];
    let (lines, _) = run_script(cfg, &script);
    let map = by_id(&lines);
    for id in [1u64, 2] {
        assert_eq!(
            field(&map[&id], "error").get("code").and_then(Json::as_str),
            Some("too_large"),
            "response {id}"
        );
    }
    assert_eq!(
        field(&map[&3], "ok"),
        Json::Bool(true),
        "small programs still served"
    );
}

#[test]
fn admission_ladder_degrades_cs_to_ci_then_truncates_fleet_wide() {
    // Pin the first rung: any queue depth degrades CS to CI.
    let cfg = ServeConfig {
        degrade_pending: 0,
        ..ServeConfig::default()
    };
    let script = vec![slice(1, 1, 4, r#","engine":"cs""#), shutdown(2)];
    let (lines, _) = run_script(cfg, &script);
    let map = by_id(&lines);
    assert_eq!(field(&map[&1], "admission"), Json::Str("degrade-ci".into()));
    assert_eq!(field(&map[&1], "engine"), Json::Str("ci".into()));
    assert_eq!(field(&map[&1], "degraded"), Json::Bool(true));

    // Pin the second rung: a one-step cap truncates (soundly) as well.
    let cfg = ServeConfig {
        degrade_pending: 0,
        truncate_pending: 0,
        truncate_step_cap: 1,
        ..ServeConfig::default()
    };
    let (lines, summary) = run_script(cfg, &script.clone());
    let map = by_id(&lines);
    assert_eq!(field(&map[&1], "admission"), Json::Str("truncate".into()));
    assert_eq!(
        field(&map[&1], "completeness"),
        Json::Str("truncated".into())
    );
    assert_eq!(field(&map[&1], "reason"), Json::Str("step quota".into()));
    assert_eq!(summary.errors, 0, "truncation is degradation, not refusal");
}

#[test]
fn per_client_budget_sheds_the_heavy_tenant_only() {
    let cfg = ServeConfig {
        client_step_budget: Some(1),
        ..ServeConfig::default()
    };
    let with_client = |id: u64, client: &str| slice(id, 1, 4, &format!(",\"client\":\"{client}\""));
    let script = vec![
        with_client(1, "heavy"),
        with_client(2, "heavy"),
        with_client(3, "light"),
        shutdown(4),
    ];
    let (lines, _) = run_script(cfg, &script);
    let map = by_id(&lines);
    assert_eq!(field(&map[&1], "admission"), Json::Str("full".into()));
    assert_eq!(
        field(&map[&2], "admission"),
        Json::Str("truncate".into()),
        "second heavy-tenant request is load-shed"
    );
    assert_eq!(
        field(&map[&3], "admission"),
        Json::Str("full".into()),
        "other tenants ride unaffected"
    );
}

#[test]
fn graceful_shutdown_drains_every_queued_query() {
    let mut script = vec![load(1, 1)];
    for i in 0..10 {
        script.push(slice(10 + i, 1, 4, ""));
    }
    script.push(shutdown(50));
    // Lines queued after the shutdown request must NOT be read.
    script.push(slice(60, 1, 4, ""));
    let (lines, summary) = run_script(ServeConfig::default(), &script);
    let map = by_id(&lines);
    for i in 0..10u64 {
        assert_eq!(
            field(&map[&(10 + i)], "ok"),
            Json::Bool(true),
            "queued query {} drained with a real answer",
            10 + i
        );
    }
    assert!(map.contains_key(&50), "shutdown acknowledged last");
    assert!(!map.contains_key(&60), "intake stopped at shutdown");
    assert_eq!(summary.served, 12);
    // EOF (no shutdown request) drains identically, just without an ack.
    let script: Vec<String> = script[..script.len() - 2].to_vec();
    let (lines, _) = run_script(ServeConfig::default(), &script);
    assert_eq!(lines.len(), script.len());
}

#[test]
fn evicted_then_requeried_sessions_answer_bit_identically() {
    // Session-granularity LRU/watermark coverage (satellite 3): with a
    // one-session cap, alternating programs forces an eviction + rebuild
    // on every request; a roomy pool keeps everything warm. Responses
    // must be bit-identical either way.
    let mut script = vec![load(1, 1), load(2, 2)];
    let mut id = 10;
    for round in 0..3 {
        for n in [1u32, 2] {
            script.push(slice(id, n, 3 + round % 2, ""));
            id += 1;
        }
    }
    script.push(shutdown(99));

    let thrash = ServeConfig {
        pool: PoolConfig {
            max_sessions: 1,
            ..PoolConfig::default()
        },
        ..ServeConfig::default()
    };
    let squeeze = ServeConfig {
        pool: PoolConfig {
            resident_watermark: Some(1),
            ..PoolConfig::default()
        },
        ..ServeConfig::default()
    };
    let warm = ServeConfig::default();

    let (t_lines, _) = run_script(thrash, &script);
    let (s_lines, _) = run_script(squeeze, &script);
    let (w_lines, _) = run_script(warm, &script);
    let (t, s, w) = (by_id(&t_lines), by_id(&s_lines), by_id(&w_lines));
    for rid in 10..id {
        assert_eq!(t[&rid], w[&rid], "LRU-evicted answer {rid} ≡ warm");
        assert_eq!(s[&rid], w[&rid], "watermark-evicted answer {rid} ≡ warm");
    }
}

#[test]
fn multi_worker_runs_match_single_worker_responses() {
    let mut script = vec![load(1, 1), load(2, 2), load(3, 3)];
    let mut id = 10;
    for n in [1u32, 2, 3] {
        for line in [3u32, 4, 5] {
            script.push(slice(
                id,
                n,
                line,
                &format!(
                    ",\"client\":\"c{n}\",\"engine\":\"{}\"",
                    if id % 2 == 0 { "cs" } else { "ci" }
                ),
            ));
            id += 1;
        }
    }
    script.push(shutdown(99));
    let parallel = ServeConfig {
        workers: 4,
        ..ServeConfig::default()
    };
    let (p_lines, _) = run_script(parallel, &script);
    let (s_lines, _) = run_script(ServeConfig::default(), &script);
    let (p, s) = (by_id(&p_lines), by_id(&s_lines));
    for rid in (1..4).chain(10..id) {
        assert_eq!(p[&rid], s[&rid], "response {rid}: 4 workers ≡ 1 worker");
    }
}

#[test]
fn traced_status_embeds_a_valid_run_report() {
    let cfg = ServeConfig {
        trace: true,
        ..ServeConfig::default()
    };
    let script = vec![
        load(1, 1),
        slice(2, 1, 4, ""),
        r#"{"op":"status","id":3}"#.to_string(),
        shutdown(4),
    ];
    let (lines, _) = run_script(cfg, &script);
    let map = by_id(&lines);
    let report = field(&map[&3], "report");
    assert_eq!(
        report.get("schema").and_then(Json::as_str),
        Some(thinslice_util::telemetry::RUN_REPORT_SCHEMA)
    );
    // Round-trip through the real report parser, not just the shape check.
    let status = &map[&3];
    let start = status.find("\"report\":").unwrap() + "\"report\":".len();
    let report_text = &status[start..status.len() - 1];
    thinslice_util::RunReport::from_json(report_text).expect("embedded report parses");
}

#[test]
fn status_reports_pool_occupancy_and_uptime() {
    let script = vec![
        load(1, 1),
        r#"{"op":"status","id":2}"#.to_string(),
        shutdown(3),
    ];
    let (lines, _) = run_script(ServeConfig::default(), &script);
    let map = by_id(&lines);
    let status = &map[&2];
    // New occupancy/uptime fields ride along; the PR 7 fields survive.
    assert_eq!(field(status, "pool_capacity").as_u64(), Some(8));
    assert!(field(status, "uptime_ms").as_u64().is_some());
    assert_eq!(field(status, "programs").as_u64(), Some(1));
    assert_eq!(field(status, "live_sessions").as_u64(), Some(1));
    assert_eq!(field(status, "evictions").as_u64(), Some(0));
}

#[test]
fn stats_op_is_answered_inline_during_chaos() {
    // `stats` mid-stream, with faults flying: still one valid response
    // per request (run_script schema-validates the embedded document).
    let cfg = chaos_cfg();
    let script = vec![
        load(1, 1),
        slice(2, 1, 4, r#","chaos":{"panics":1}"#),
        r#"{"op":"stats","id":3}"#.to_string(),
        slice(4, 1, 5, ""),
        shutdown(5),
    ];
    let (lines, summary) = run_script(cfg, &script);
    let map = by_id(&lines);
    assert_eq!(field(&map[&3], "op").as_str(), Some("stats"));
    let doc = field(&map[&3], "stats");
    assert_eq!(
        doc.get("schema").and_then(Json::as_str),
        Some("thinslice.serve_stats.v1")
    );
    assert_eq!(summary.errors, 0);
    assert_eq!(summary.panics, 1);
}

/// Drains a script, then asks the same server for `stats` — so the
/// tables deterministically cover every completed request.
fn stats_after(cfg: ServeConfig, script: &[String]) -> Json {
    let sink = Sink::default();
    let out: thinslice_serve::SharedOut = Arc::new(Mutex::new(sink.clone()));
    let server = Server::new(cfg);
    let input = script.join("\n") + "\n";
    server.serve(Cursor::new(input.into_bytes()), out.clone());
    sink.0.lock().unwrap().clear();
    server.ingest(r#"{"op":"stats","id":9999}"#, &out);
    let bytes = sink.0.lock().unwrap().clone();
    let line = String::from_utf8(bytes).unwrap().trim().to_string();
    validate_response_line(&line).unwrap_or_else(|e| panic!("invalid stats {line:?}: {e}"));
    field(&line, "stats")
}

#[test]
fn stats_reports_tenant_tables_memo_and_slow_queries() {
    let cfg = ServeConfig {
        chaos: true,
        slow_ms: Some(0), // every request is "slow": the log must fill
        ..ServeConfig::default()
    };
    let script = vec![
        load(1, 1),
        slice(10, 1, 4, r#","client":"alpha","engine":"cs""#),
        slice(11, 1, 5, r#","client":"alpha""#),
        slice(12, 1, 4, r#","client":"beta","chaos":{"panics":1}"#),
        slice(
            13,
            1,
            4,
            r#","client":"beta","step_budget":1,"degrade":false"#,
        ),
        shutdown(99),
    ];
    let doc = stats_after(cfg, &script);

    // Per-tenant tables, sorted by client, with latency quantiles.
    let tenants = doc.get("tenants").and_then(Json::as_arr).unwrap();
    let names: Vec<&str> = tenants
        .iter()
        .map(|t| t.get("client").and_then(Json::as_str).unwrap())
        .collect();
    assert_eq!(names, ["alpha", "beta"]);
    let alpha = &tenants[0];
    assert_eq!(alpha.get("requests").and_then(Json::as_u64), Some(2));
    assert!(alpha.get("spent_steps").and_then(Json::as_u64).unwrap() > 0);
    let lat = alpha.get("latency_us").unwrap();
    assert_eq!(lat.get("count").and_then(Json::as_u64), Some(2));
    assert!(lat.get("max").and_then(Json::as_f64).unwrap() > 0.0);
    // The CS query tabulates exit regions: memo activity is visible.
    let memo_touched = alpha.get("exit_hits").and_then(Json::as_u64).unwrap()
        + alpha.get("exit_misses").and_then(Json::as_u64).unwrap();
    assert!(memo_touched > 0, "CS query must touch the exit memo");
    let beta = &tenants[1];
    assert_eq!(beta.get("requests").and_then(Json::as_u64), Some(2));
    assert_eq!(beta.get("retries").and_then(Json::as_u64), Some(1));

    // Per-session table: one program, live, with its latency histogram.
    let sessions = doc.get("sessions").and_then(Json::as_arr).unwrap();
    assert_eq!(sessions.len(), 1);
    let sess = &sessions[0];
    assert_eq!(
        sess.get("program").and_then(Json::as_str).unwrap().len(),
        16
    );
    assert_eq!(sess.get("live"), Some(&Json::Bool(true)));
    assert!(sess.get("resident").and_then(Json::as_u64).unwrap() > 0);
    assert_eq!(
        sess.get("latency_us")
            .and_then(|l| l.get("count"))
            .and_then(Json::as_u64),
        Some(4)
    );

    // Slow-query log: every slice crossed the 0ms threshold, capturing
    // query shape, stage breakdown, and completeness.
    let slow = doc.get("slow").and_then(Json::as_arr).unwrap();
    assert_eq!(slow.len(), 4);
    assert!(slow
        .iter()
        .any(|q| { q.get("completeness").and_then(Json::as_str) == Some("truncated") }));
    for q in slow {
        let total = q.get("total_us").and_then(Json::as_u64).unwrap();
        let queue = q.get("queue_us").and_then(Json::as_u64).unwrap();
        let exec = q.get("exec_us").and_then(Json::as_u64).unwrap();
        assert_eq!(total, queue + exec);
    }

    // Flight-recorder tail: the lifecycle is in there.
    let events = doc.get("events").and_then(Json::as_arr).unwrap();
    let kinds: std::collections::BTreeSet<&str> = events
        .iter()
        .map(|e| e.get("kind").and_then(Json::as_str).unwrap())
        .collect();
    for kind in [
        "session_built",
        "request_admitted",
        "fault_injected",
        "session_quarantined",
        "budget_exhausted",
        "slow_query",
    ] {
        assert!(kinds.contains(kind), "missing {kind} in {kinds:?}");
    }
    assert!(
        doc.get("server")
            .and_then(|s| s.get("recorded"))
            .and_then(Json::as_u64)
            .unwrap()
            > 0
    );
    assert_eq!(
        doc.get("pool")
            .and_then(|p| p.get("quarantines"))
            .and_then(Json::as_u64),
        Some(1)
    );
}

#[test]
fn observability_knobs_do_not_perturb_responses() {
    // The acceptance bar: with the recorder on (default), off, and with
    // the slow-query log armed, every load/slice/error response is
    // byte-identical. Only `stats` itself may differ.
    let cfg_default = ServeConfig::default();
    let cfg_off = ServeConfig {
        recorder_capacity: 0,
        ..ServeConfig::default()
    };
    let cfg_armed = ServeConfig {
        recorder_capacity: 1024,
        slow_ms: Some(0),
        ..ServeConfig::default()
    };
    let script = vec![
        load(1, 1),
        slice(10, 1, 4, r#","client":"a","engine":"cs""#),
        slice(11, 1, 5, r#","client":"b""#),
        r#"{"op":"slice","id":12}"#.to_string(), // structured error
        shutdown(99),
    ];
    let (d_lines, _) = run_script(cfg_default, &script);
    let (o_lines, _) = run_script(cfg_off, &script);
    let (a_lines, _) = run_script(cfg_armed, &script);
    let (d, o, a) = (by_id(&d_lines), by_id(&o_lines), by_id(&a_lines));
    for rid in [1, 10, 11, 12] {
        assert_eq!(d[&rid], o[&rid], "response {rid}: recorder off ≡ default");
        assert_eq!(d[&rid], a[&rid], "response {rid}: log armed ≡ default");
    }
}

/// End-to-end `reload`: a hash-addressed slice after the reload answers
/// for the edited program, bit-identical to a fresh daemon that loaded
/// the edit directly, and the stats doc exposes the new content hash.
#[test]
fn reload_serves_the_edited_program_under_the_original_key() {
    use thinslice_serve::pool::program_hash;
    use thinslice_serve::protocol::SourceFile;

    let files = |n: u32| {
        vec![SourceFile {
            name: format!("p{n}.mj"),
            text: program(n),
        }]
    };
    let h1 = program_hash(&files(1));
    let h2 = program_hash(&files(2));
    let reload = format!(
        "{{\"op\":\"reload\",\"id\":2,\"program\":\"{h1}\",\"sources\":{}}}",
        src_json(2)
    );
    let hash_slice = |id: u64, hash: &str| {
        format!(
            "{{\"op\":\"slice\",\"id\":{id},\"program\":\"{hash}\",\"seed\":{{\"file\":\"p2.mj\",\"line\":4}}}}"
        )
    };
    let script = vec![
        load(1, 1),
        slice(10, 1, 4, ""), // warm the lazy stages before the edit
        reload,
        hash_slice(11, &h1), // key lineage: still addressed by h1
        format!("{{\"op\":\"stats\",\"id\":3}}"),
        shutdown(99),
    ];
    // Lockstep: the reload must not race the queued slice before it.
    let (lines, _) = run_script_lockstep(ServeConfig::default(), &script);
    let r = by_id(&lines);
    assert_eq!(field(&r[&2], "program"), Json::Str(h1.clone()));
    assert_eq!(field(&r[&2], "content"), Json::Str(h2.clone()));
    assert_eq!(field(&r[&2], "path"), Json::Str("incremental".into()));
    assert_eq!(field(&r[&2], "pta_reused"), Json::Bool(true));

    // Fresh daemon loads program 2 directly; slices must be byte-equal
    // modulo the program hash they are addressed by.
    let fresh_script = vec![load(1, 2), hash_slice(11, &h2), shutdown(99)];
    let (fresh_lines, _) = run_script(ServeConfig::default(), &fresh_script);
    let f = by_id(&fresh_lines);
    assert_eq!(
        r[&11].replace(&h1, "_"),
        f[&11].replace(&h2, "_"),
        "post-reload slice ≡ fresh daemon on the edited program"
    );

    // The stats session row shows lineage key and current content hash.
    let doc = field(&r[&3], "stats");
    let sessions = doc.get("sessions").and_then(Json::as_arr).unwrap();
    let row = &sessions[0];
    assert_eq!(row.get("program").and_then(Json::as_str), Some(h1.as_str()));
    assert_eq!(row.get("content").and_then(Json::as_str), Some(h2.as_str()));
    let pool = doc.get("pool").unwrap();
    assert_eq!(pool.get("reloads").and_then(Json::as_u64), Some(1));
    assert_eq!(
        pool.get("reloads_incremental").and_then(Json::as_u64),
        Some(1)
    );
}

/// A fresh scratch directory for one test's snapshot store.
fn snap_dir(test: &str) -> String {
    let dir = std::env::temp_dir().join(format!("ts_chaos_{test}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir.to_string_lossy().into_owned()
}

fn snap_cfg(dir: &str) -> ServeConfig {
    ServeConfig {
        pool: PoolConfig {
            snapshot_dir: Some(dir.to_string()),
            ..PoolConfig::default()
        },
        ..ServeConfig::default()
    }
}

fn pool_counter(doc: &Json, key: &str) -> u64 {
    doc.get("pool")
        .and_then(|p| p.get(key))
        .and_then(Json::as_u64)
        .unwrap()
}

/// Snapshot chaos: a daemon pointed at truncated, bit-flipped, and
/// version-skewed snapshot files stays up, rebuilds from sources, and
/// answers bit-identically to a daemon with no snapshot directory.
#[test]
fn corrupt_snapshot_files_fall_back_to_clean_rebuilds() {
    use thinslice::snapshot::{SNAPSHOT_MAGIC, SNAPSHOT_VERSION};
    use thinslice::SnapshotStore;
    use thinslice_serve::pool::program_hash;
    use thinslice_serve::protocol::SourceFile;

    let dir = snap_dir("corrupt");
    let script = vec![
        load(1, 1),
        slice(2, 1, 4, ""),
        slice(3, 1, 5, ""),
        shutdown(9),
    ];

    // Seed the store with a genuine snapshot, then keep a pristine
    // baseline from a snapshot-free daemon.
    let (_, _) = run_script(snap_cfg(&dir), &script);
    let (base_lines, _) = run_script(ServeConfig::default(), &script);
    let base = by_id(&base_lines);

    let h = program_hash(&[SourceFile {
        name: "p1.mj".to_string(),
        text: program(1),
    }]);
    let path = SnapshotStore::new(&dir).path(&h);
    let pristine = std::fs::read(&path).expect("daemon persisted a snapshot");

    // Three sabotage modes: truncation, a mid-file bit flip, and a
    // well-formed file written under a future format version.
    let mut flipped = pristine.clone();
    let mid = flipped.len() / 2;
    flipped[mid] ^= 0x08;
    let mut skewed = thinslice_util::SnapshotWriter::new(SNAPSHOT_MAGIC, SNAPSHOT_VERSION + 1, &h);
    skewed.section("config", vec![1, 2, 3]);
    let cases: Vec<(&str, Vec<u8>)> = vec![
        ("truncated", pristine[..pristine.len() / 3].to_vec()),
        ("bit-flipped", flipped),
        ("version-skewed", skewed.finish()),
    ];
    for (label, bytes) in cases {
        std::fs::write(&path, &bytes).unwrap();
        let (lines, summary) = run_script(snap_cfg(&dir), &script);
        assert_eq!(summary.errors, 0, "{label}: corruption never errors");
        let got = by_id(&lines);
        for id in [1u64, 2, 3] {
            assert_eq!(
                got[&id], base[&id],
                "{label}: response {id} ≡ snapshot-free daemon"
            );
        }
    }

    // The discard is visible in the stats document.
    std::fs::write(&path, &pristine[..pristine.len() / 3]).unwrap();
    let doc = stats_after(snap_cfg(&dir), &script[..script.len() - 1]);
    assert_eq!(pool_counter(&doc, "snapshot_discarded_corrupt"), 1);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Warm start end to end: a restarted daemon restores the persisted
/// session (counted as a snapshot hit), answers bit-identically, and a
/// `reload` invalidates the now-stale on-disk snapshot.
#[test]
fn warm_started_daemon_matches_cold_and_reload_invalidates_the_snapshot() {
    use thinslice::SnapshotStore;
    use thinslice_serve::pool::program_hash;
    use thinslice_serve::protocol::SourceFile;

    let dir = snap_dir("warm");
    let files = |n: u32| {
        vec![SourceFile {
            name: format!("p{n}.mj"),
            text: program(n),
        }]
    };
    let h1 = program_hash(&files(1));
    let h2 = program_hash(&files(2));
    let script = vec![load(1, 1), slice(2, 1, 4, ""), shutdown(9)];

    // First daemon builds cold and persists on build + drain.
    run_script(snap_cfg(&dir), &script);
    let store = SnapshotStore::new(&dir);
    assert!(store.path(&h1).exists());

    // Restarted daemon warm-starts; responses ≡ a snapshot-free daemon.
    let (warm_lines, _) = run_script(snap_cfg(&dir), &script);
    let (cold_lines, _) = run_script(ServeConfig::default(), &script);
    let (warm, cold) = (by_id(&warm_lines), by_id(&cold_lines));
    assert_eq!(warm[&2], cold[&2], "warm slice ≡ cold slice, byte-equal");
    // The load ack differs only in `resident`: the restored session
    // carries the stages the previous run's queries forced, so its
    // estimate is honestly larger than a cold build's.
    for key in ["ok", "program", "cached"] {
        assert_eq!(field(&warm[&1], key), field(&cold[&1], key), "load {key}");
    }
    assert!(
        field(&warm[&1], "resident").as_u64() >= field(&cold[&1], "resident").as_u64(),
        "restored session carries at least the cold session's stages"
    );
    let doc = stats_after(snap_cfg(&dir), &script[..script.len() - 1]);
    assert_eq!(pool_counter(&doc, "snapshot_hits"), 1, "restored from disk");
    assert_eq!(pool_counter(&doc, "snapshot_discarded_corrupt"), 0);

    // A reload supersedes the on-disk snapshot for the old content and
    // persists one for the new content under the preserved pool key.
    let reload = format!(
        "{{\"op\":\"reload\",\"id\":3,\"program\":\"{h1}\",\"sources\":{}}}",
        src_json(2)
    );
    let script = vec![load(1, 1), slice(2, 1, 4, ""), reload, shutdown(9)];
    run_script_lockstep(snap_cfg(&dir), &script);
    assert!(
        !store.path(&h1).exists(),
        "reload invalidates the stale snapshot"
    );
    assert!(
        store.path(&h2).exists(),
        "and persists the edited program's snapshot"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
