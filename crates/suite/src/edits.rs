//! Seeded compile-safe edit scripts over MJ sources.
//!
//! The incremental-reanalysis equivalence suite needs a stream of *edits*
//! that (a) always leave the program compiling, (b) cover every
//! invalidation path of [`thinslice::AnalysisSession::update`] — no-op
//! comment tweaks, body-only literal tweaks, statement insertions, and
//! structural method additions — and (c) are fully reproducible from a
//! seed, so a failing round can be replayed. This module is that
//! generator; it is shared by the workspace equivalence tests and the
//! `incremental` bench row.
//!
//! Edits are *textual*: the generator scans the source for safe anchor
//! points (statement lines, integer literals, block openers, class
//! closers) and rewrites the text. It never parses MJ — the compile-safety
//! of each rewrite is an invariant of the anchor choice, and the suite's
//! tests enforce it by recompiling every mutated program.

use thinslice_util::SmallRng;

/// The kind of one generated edit, in increasing order of invalidation
/// cost for the incremental session.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EditKind {
    /// A `//` comment inserted on its own line: the normalized AST is
    /// unchanged, so the session's diff classifies the edit as a no-op.
    Comment,
    /// An integer literal incremented in place: a body-only edit whose
    /// points-to constraint stream is unchanged (literals are
    /// value-erased in the IR), so the solver is reused.
    IntTweak,
    /// A fresh local declaration inserted after a block opener: a
    /// body-only edit that changes the method's statement list.
    StmtInsert,
    /// A fresh method appended to a class: a structural edit — the
    /// session rebuilds whatever stages were already built.
    MethodAppend,
}

impl EditKind {
    /// Short label for logs and bench rows.
    pub fn label(self) -> &'static str {
        match self {
            EditKind::Comment => "comment",
            EditKind::IntTweak => "int-tweak",
            EditKind::StmtInsert => "stmt-insert",
            EditKind::MethodAppend => "method-append",
        }
    }
}

/// One applied edit: which file was touched, what kind of rewrite, and at
/// which (1-based, pre-edit) line the anchor sat.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Edit {
    /// Name of the edited file.
    pub file: String,
    /// What was done.
    pub kind: EditKind,
    /// 1-based line of the anchor in the *pre-edit* text.
    pub line: u32,
}

/// A seeded generator of compile-safe edit scripts.
///
/// Each [`step`](EditScript::step) call picks a file and an edit kind
/// pseudo-randomly, applies one rewrite, and returns the edited sources
/// plus a description of what changed. Identifiers introduced by edits
/// carry a monotone counter, so successive insertions never collide.
///
/// # Examples
///
/// ```
/// let sources = vec![(
///     "m.mj".to_string(),
///     "class Main { static void main() {\nint x = 1;\nprint(x);\n} }".to_string(),
/// )];
/// let mut gen = thinslice_suite::edits::EditScript::new(7);
/// let (edited, edit) = gen.step(&sources);
/// assert_ne!(edited[0].1, sources[0].1, "every step rewrites something");
/// let mut replay = thinslice_suite::edits::EditScript::new(7);
/// assert_eq!(replay.step(&sources), (edited, edit));
/// ```
#[derive(Debug, Clone)]
pub struct EditScript {
    rng: SmallRng,
    counter: u32,
}

impl EditScript {
    /// Creates a generator; the same seed replays the same script.
    pub fn new(seed: u64) -> Self {
        Self {
            rng: SmallRng::new(seed),
            counter: 0,
        }
    }

    /// Applies one pseudo-random compile-safe edit to `sources`,
    /// returning the edited sources and the applied [`Edit`].
    ///
    /// Kinds that find no anchor in the chosen file (e.g. no integer
    /// literal) fall back to a comment insertion, which always applies —
    /// every step is guaranteed to change the text of exactly one file.
    pub fn step(&mut self, sources: &[(String, String)]) -> (Vec<(String, String)>, Edit) {
        let file_idx = self.rng.range_usize(0, sources.len());
        let kinds = [
            EditKind::Comment,
            EditKind::IntTweak,
            EditKind::StmtInsert,
            EditKind::MethodAppend,
        ];
        let kind = kinds[self.rng.range_usize(0, kinds.len())];
        let text = &sources[file_idx].1;
        let applied = self
            .try_apply(kind, text)
            .unwrap_or_else(|| self.insert_comment(text));
        let mut out: Vec<(String, String)> = sources.to_vec();
        out[file_idx].1 = applied.0;
        let edit = Edit {
            file: sources[file_idx].0.clone(),
            kind: applied.2,
            line: applied.1,
        };
        (out, edit)
    }

    fn try_apply(&mut self, kind: EditKind, text: &str) -> Option<(String, u32, EditKind)> {
        match kind {
            EditKind::Comment => Some(self.insert_comment(text)),
            EditKind::IntTweak => self.tweak_int(text),
            EditKind::StmtInsert => self.insert_stmt(text),
            EditKind::MethodAppend => self.append_method(text),
        }
    }

    /// Inserts `// edit N` as a full line after a random line. Always
    /// applies: every text has at least the implicit final line.
    fn insert_comment(&mut self, text: &str) -> (String, u32, EditKind) {
        let lines: Vec<&str> = text.lines().collect();
        let at = self.rng.range_usize(0, lines.len().max(1));
        self.counter += 1;
        let mut out: Vec<String> = lines.iter().map(|l| (*l).to_string()).collect();
        out.insert(at.min(out.len()), format!("// edit {}", self.counter));
        (out.join("\n"), at as u32 + 1, EditKind::Comment)
    }

    /// Increments a random standalone integer literal (not part of an
    /// identifier, not inside a string or comment).
    fn tweak_int(&mut self, text: &str) -> Option<(String, u32, EditKind)> {
        let anchors = int_anchors(text);
        if anchors.is_empty() {
            return None;
        }
        let pick = self.rng.range_usize(0, anchors.len());
        apply_int_tweak(text, anchors[pick])
    }

    /// Inserts a fresh local declaration after a random block opener
    /// (a line whose code ends with `) {` — method headers, `if`,
    /// `while`; all open a scope where a new local is legal).
    fn insert_stmt(&mut self, text: &str) -> Option<(String, u32, EditKind)> {
        let anchors: Vec<usize> = text
            .lines()
            .enumerate()
            .filter(|(_, l)| code_part(l).is_some_and(|c| c.trim_end().ends_with(") {")))
            .map(|(i, _)| i)
            .collect();
        if anchors.is_empty() {
            return None;
        }
        let at = anchors[self.rng.range_usize(0, anchors.len())];
        self.counter += 1;
        let mut out: Vec<String> = text.lines().map(str::to_string).collect();
        out.insert(
            at + 1,
            format!("int edit{} = {};", self.counter, self.counter % 1000),
        );
        Some((out.join("\n"), at as u32 + 1, EditKind::StmtInsert))
    }

    /// Appends a fresh method before a random class-closing `}` (a line
    /// that is exactly `}` at column zero — MJ has no nested classes, so
    /// these are always class ends).
    fn append_method(&mut self, text: &str) -> Option<(String, u32, EditKind)> {
        let anchors: Vec<usize> = text
            .lines()
            .enumerate()
            .filter(|(_, l)| l.trim_end() == "}" && !l.starts_with(char::is_whitespace))
            .map(|(i, _)| i)
            .collect();
        if anchors.is_empty() {
            return None;
        }
        let at = anchors[self.rng.range_usize(0, anchors.len())];
        self.counter += 1;
        let mut out: Vec<String> = text.lines().map(str::to_string).collect();
        out.insert(
            at,
            format!(
                "    int edit{}() {{ return {}; }}",
                self.counter,
                self.counter % 1000
            ),
        );
        Some((out.join("\n"), at as u32 + 1, EditKind::MethodAppend))
    }
}

/// Deterministically increments the *first* standalone integer literal of
/// `text` — the canonical minimal body edit the bench's `incremental` row
/// times. Returns `None` when the file has no tweakable literal.
pub fn tweak_first_int(text: &str) -> Option<String> {
    let anchors = int_anchors(text);
    apply_int_tweak(text, *anchors.first()?).map(|(out, _, _)| out)
}

/// `(line, start, end)` byte anchors of every standalone integer literal —
/// not part of an identifier, not inside a string or comment.
fn int_anchors(text: &str) -> Vec<(usize, usize, usize)> {
    let mut anchors = Vec::new();
    for (ln, line) in text.lines().enumerate() {
        if let Some(code) = code_part(line) {
            let bytes = code.as_bytes();
            let mut i = 0;
            let mut in_str = false;
            while i < bytes.len() {
                let b = bytes[i];
                if b == b'"' {
                    in_str = !in_str;
                    i += 1;
                    continue;
                }
                if !in_str && b.is_ascii_digit() {
                    let start = i;
                    while i < bytes.len() && bytes[i].is_ascii_digit() {
                        i += 1;
                    }
                    let before_ok = start == 0 || !ident_byte(bytes[start - 1]);
                    let after_ok = i == bytes.len() || !ident_byte(bytes[i]);
                    if before_ok && after_ok {
                        anchors.push((ln, start, i));
                    }
                    continue;
                }
                i += 1;
            }
        }
    }
    anchors
}

fn apply_int_tweak(
    text: &str,
    (ln, start, end): (usize, usize, usize),
) -> Option<(String, u32, EditKind)> {
    let mut out: Vec<String> = text.lines().map(str::to_string).collect();
    let line = &out[ln];
    let value: u64 = line[start..end].parse().ok()?;
    // Stay in a small range so repeated tweaks never overflow `int`.
    let replacement = (value + 1) % 1000;
    out[ln] = format!("{}{}{}", &line[..start], replacement, &line[end..]);
    Some((out.join("\n"), ln as u32 + 1, EditKind::IntTweak))
}

/// The code part of a line: everything before a `//` comment that is not
/// inside a string literal. Returns `None` for all-comment lines.
fn code_part(line: &str) -> Option<&str> {
    let bytes = line.as_bytes();
    let mut in_str = false;
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'"' => in_str = !in_str,
            b'/' if !in_str && i + 1 < bytes.len() && bytes[i + 1] == b'/' => {
                let code = &line[..i];
                return if code.trim().is_empty() {
                    None
                } else {
                    Some(code)
                };
            }
            _ => {}
        }
        i += 1;
    }
    Some(line)
}

fn ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b == b'.'
}

#[cfg(test)]
mod tests {
    use super::*;

    fn owned(sources: &[(&str, &str)]) -> Vec<(String, String)> {
        sources
            .iter()
            .map(|(n, t)| ((*n).to_string(), (*t).to_string()))
            .collect()
    }

    #[test]
    fn scripts_replay_bit_identically() {
        let base = owned(&crate::programs::nanoxml::benchmark().sources);
        for seed in [0u64, 1, 42] {
            let mut a = EditScript::new(seed);
            let mut b = EditScript::new(seed);
            let (mut sa, mut sb) = (base.clone(), base.clone());
            for _ in 0..12 {
                let (na, ea) = a.step(&sa);
                let (nb, eb) = b.step(&sb);
                assert_eq!(na, nb);
                assert_eq!(ea, eb);
                sa = na;
                sb = nb;
            }
        }
    }

    #[test]
    fn every_step_compiles_on_every_benchmark() {
        for b in crate::all_benchmarks() {
            let mut gen = EditScript::new(0xED17);
            let mut sources = owned(&b.sources);
            for round in 0..8 {
                let (next, edit) = gen.step(&sources);
                let refs: Vec<(&str, &str)> =
                    next.iter().map(|(n, t)| (n.as_str(), t.as_str())).collect();
                thinslice::AnalysisSession::new(&refs).unwrap_or_else(|e| {
                    panic!("{} round {round} ({edit:?}) broke the build: {e}", b.name)
                });
                sources = next;
            }
        }
    }

    #[test]
    fn first_int_tweak_is_deterministic_and_compiles_everywhere() {
        for b in crate::all_benchmarks() {
            let (name, text) = b.sources[0];
            let tweaked = tweak_first_int(text)
                .unwrap_or_else(|| panic!("{} has an integer literal", b.name));
            assert_ne!(tweaked, text);
            assert_eq!(tweak_first_int(text).unwrap(), tweaked, "deterministic");
            let mut edited: Vec<(&str, &str)> = b.sources.clone();
            edited[0] = (name, &tweaked);
            thinslice::AnalysisSession::new(&edited)
                .unwrap_or_else(|e| panic!("{} tweak broke the build: {e}", b.name));
        }
    }

    #[test]
    fn all_edit_kinds_occur() {
        let base = owned(&crate::programs::nanoxml::benchmark().sources);
        let mut gen = EditScript::new(3);
        let mut sources = base;
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..40 {
            let (next, edit) = gen.step(&sources);
            seen.insert(edit.kind.label());
            sources = next;
        }
        assert_eq!(
            seen.into_iter().collect::<Vec<_>>(),
            ["comment", "int-tweak", "method-append", "stmt-insert"]
        );
    }
}
