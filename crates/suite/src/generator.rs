//! Parametric MJ program generators for scalability experiments.
//!
//! The paper's scalability claims (§6.1) need programs of increasing size:
//! the context-insensitive thin slicer stays cheap while the heap-parameter
//! SDG explodes. [`GeneratorConfig`] controls how much of each shape is
//! produced; generation is deterministic for a given seed.

use std::fmt::Write;
use thinslice_util::SmallRng;

/// Size knobs for the generated program.
#[derive(Debug, Clone)]
pub struct GeneratorConfig {
    /// Number of AST-style node subclasses (javac shape).
    pub node_classes: usize,
    /// Number of processing passes, each walking all node kinds.
    pub passes: usize,
    /// Number of distinct container round-trips in `main` (values stored
    /// into and read back out of per-use `Vector`s).
    pub container_chains: usize,
    /// Depth of the call chain each stored value travels through before
    /// reaching its container.
    pub call_depth: usize,
    /// RNG seed (shuffles arithmetic so bodies are not identical).
    pub seed: u64,
}

impl Default for GeneratorConfig {
    fn default() -> Self {
        Self {
            node_classes: 8,
            passes: 2,
            container_chains: 4,
            call_depth: 3,
            seed: 7,
        }
    }
}

impl GeneratorConfig {
    /// A configuration scaled by `factor` in every dimension.
    pub fn scaled(factor: usize) -> Self {
        let base = Self::default();
        Self {
            node_classes: base.node_classes * factor,
            passes: base.passes * factor,
            container_chains: base.container_chains * factor,
            call_depth: base.call_depth + factor,
            seed: base.seed,
        }
    }
}

/// Generates an MJ program exercising virtual dispatch, tagged downcasts
/// and container traffic, sized by `config`.
///
/// The generated program always defines a `Main.main` and compiles against
/// the standard library; it contains one `print` per container chain whose
/// thin slice is short and whose traditional slice spans the generated
/// plumbing.
pub fn generate(config: &GeneratorConfig) -> String {
    let mut rng = SmallRng::new(config.seed);
    let mut out = String::new();

    // The node hierarchy (javac shape). The base `weigh` makes calls
    // through the supertype polymorphic (CHA vs Andersen ablation).
    out.push_str("class GenNode {\n    int op;\n    GenNode(int op) {\n        this.op = op;\n    }\n    int weigh() {\n        return this.op;\n    }\n}\n\n");
    for i in 0..config.node_classes {
        let a = rng.range_usize(1, 9);
        let b = rng.range_usize(1, 9);
        writeln!(
            out,
            "class GenNode{i} extends GenNode {{\n    int payload;\n    GenNode{i}(int payload) {{\n        super({op});\n        this.payload = payload * {a} + {b};\n    }}\n    int weigh() {{\n        return this.payload * {b};\n    }}\n}}\n",
            op = i + 1,
        )
        .unwrap();
    }

    // A builder filling a Vector with nodes of every kind.
    out.push_str("class GenBuilder {\n    Vector nodes;\n    GenBuilder() {\n        this.nodes = new Vector();\n    }\n    void buildAll(InputStream in) {\n");
    for i in 0..config.node_classes {
        writeln!(out, "        this.nodes.add(new GenNode{i}(in.readInt()));").unwrap();
    }
    out.push_str("    }\n    GenNode nodeAt(int i) {\n        return (GenNode) this.nodes.get(i);\n    }\n    int count() {\n        return this.nodes.size();\n    }\n}\n\n");

    // Processing passes switching on the tag and downcasting.
    for p in 0..config.passes {
        writeln!(out, "class GenPass{p} {{\n    int total;\n    GenPass{p}() {{\n        this.total = 0;\n    }}\n    void run(GenBuilder builder) {{\n        int i = 0;\n        while (i < builder.count()) {{\n            GenNode n = builder.nodeAt(i);\n            this.visit(n);\n            i = i + 1;\n        }}\n    }}\n    void visit(GenNode n) {{\n        int op = n.op;").unwrap();
        for i in 0..config.node_classes {
            writeln!(
                out,
                "        if (op == {tag}) {{\n            GenNode{i} t{i} = (GenNode{i}) n;\n            this.total = this.total + t{i}.weigh();\n        }}",
                tag = i + 1,
            )
            .unwrap();
        }
        out.push_str("    }\n}\n\n");
    }

    // Call-depth helpers: each value travels through `call_depth` wrappers.
    for d in 0..config.call_depth {
        let next = if d + 1 < config.call_depth {
            format!("GenHop{}.relay(value + {})", d + 1, rng.range_usize(1, 5))
        } else {
            "value".to_string()
        };
        writeln!(
            out,
            "class GenHop{d} {{\n    static int relay(int value) {{\n        return {next};\n    }}\n}}\n"
        )
        .unwrap();
    }

    // A summary pass dispatching through the supertype.
    out.push_str("class GenSummary {\n    int total(GenBuilder builder) {\n        int sum = 0;\n        int i = 0;\n        while (i < builder.count()) {\n            GenNode n = builder.nodeAt(i);\n            sum = sum + n.weigh();\n            i = i + 1;\n        }\n        return sum;\n    }\n}\n\n");

    // Container chains in main.
    out.push_str("class Main {\n    static void main() {\n        InputStream in = new InputStream(\"gen.dat\");\n        GenBuilder builder = new GenBuilder();\n        builder.buildAll(in);\n        GenSummary summary = new GenSummary();\n        print(\"summary: \" + \"\" + summary.total(builder));\n");
    for p in 0..config.passes {
        writeln!(out, "        GenPass{p} pass{p} = new GenPass{p}();\n        pass{p}.run(builder);\n        print(\"pass{p}: \" + \"\" + pass{p}.total);").unwrap();
    }
    for c in 0..config.container_chains {
        writeln!(
            out,
            "        Vector chain{c} = new Vector();\n        int seed{c} = GenHop0.relay(in.readInt());\n        chain{c}.add(\"v\" + \"\" + seed{c});\n        String out{c} = (String) chain{c}.get(0);\n        print(out{c});"
        )
        .unwrap();
    }
    out.push_str("    }\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use thinslice::Analysis;

    #[test]
    fn generated_program_compiles() {
        let src = generate(&GeneratorConfig::default());
        let a = Analysis::build(&[("gen.mj", &src)]).expect("generated program must compile");
        assert!(a.pta.callgraph.node_count() > 10);
    }

    #[test]
    fn generation_is_deterministic() {
        let c = GeneratorConfig::default();
        assert_eq!(generate(&c), generate(&c));
    }

    #[test]
    fn scaled_configs_grow_the_program() {
        let small = generate(&GeneratorConfig::default());
        let big = generate(&GeneratorConfig::scaled(3));
        assert!(big.len() > small.len() * 2);
        let a = Analysis::build(&[("gen.mj", &big)]).expect("scaled program must compile");
        assert!(a.sdg.node_count() > 0);
    }

    #[test]
    fn generated_casts_are_tough() {
        // Every pass downcasts container-retrieved nodes; at least one cast
        // must be unverifiable.
        let src = generate(&GeneratorConfig::default());
        let a = Analysis::build(&[("gen.mj", &src)]).unwrap();
        let mut tough = 0;
        for s in a.program.all_stmts() {
            if let thinslice_ir::InstrKind::Cast {
                src: thinslice_ir::Operand::Var(v),
                ty,
                ..
            } = &a.program.instr(s).kind
            {
                if a.sdg.stmt_node(s).is_some()
                    && !a.pta.cast_is_verified(&a.program, s.method, *v, ty)
                {
                    tough += 1;
                }
            }
        }
        assert!(tough > 0, "generated program must contain tough casts");
    }
}
