#![warn(missing_docs)]

//! # thinslice-suite — the evaluation benchmarks
//!
//! MJ re-creations of the paper's benchmark suite, shaped to reproduce
//! each subject's *dependence structure* (see DESIGN.md for the
//! substitution argument):
//!
//! * Table 2 (debugging): [`programs::nanoxml`], [`programs::jtopas`],
//!   [`programs::ant`], [`programs::xmlsec`] with SIR-style injected-bug
//!   tasks;
//! * Table 3 (tough casts): [`programs::mtrt`], [`programs::jess`],
//!   [`programs::javac`], [`programs::jack`];
//! * [`generator`] — parametric programs for the scalability experiments;
//! * [`edits`] — seeded compile-safe edit scripts for the incremental
//!   re-analysis equivalence suite.
//!
//! [`runner`] executes a task with the paper's methodology and produces
//! table rows.

pub mod edits;
pub mod generator;
pub mod programs;
pub mod runner;
pub mod spec;

pub use generator::{generate, GeneratorConfig};
pub use runner::{measure, run_task, Measurement, TaskResult};
pub use spec::{line_with, Benchmark, Marker, Task, TaskKind};

/// All benchmarks, in the paper's order.
pub fn all_benchmarks() -> Vec<Benchmark> {
    vec![
        programs::nanoxml::benchmark(),
        programs::jtopas::benchmark(),
        programs::ant::benchmark(),
        programs::xmlsec::benchmark(),
        programs::mtrt::benchmark(),
        programs::jess::benchmark(),
        programs::javac::benchmark(),
        programs::jack::benchmark(),
    ]
}

/// All Table 2 (debugging) tasks.
pub fn all_bug_tasks() -> Vec<Task> {
    let mut out = programs::nanoxml::bugs();
    out.extend(programs::jtopas::bugs());
    out.extend(programs::ant::bugs());
    out.extend(programs::xmlsec::bugs());
    out
}

/// All Table 3 (tough cast) tasks.
pub fn all_cast_tasks() -> Vec<Task> {
    let mut out = programs::mtrt::casts();
    out.extend(programs::jess::casts());
    out.extend(programs::javac::casts());
    out.extend(programs::jack::casts());
    out
}

/// Looks up a benchmark by name.
pub fn benchmark_named(name: &str) -> Option<Benchmark> {
    all_benchmarks().into_iter().find(|b| b.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_benchmarks_compile() {
        for b in all_benchmarks() {
            let a = b.analyze(thinslice_pta::PtaConfig::default());
            assert!(
                a.pta.callgraph.node_count() > 0,
                "{} has no reachable code",
                b.name
            );
        }
    }

    #[test]
    fn task_counts_match_the_paper() {
        // 13 sliceable bugs in Table 2 and 22 casts in Table 3.
        assert_eq!(all_bug_tasks().len(), 13);
        assert_eq!(all_cast_tasks().len(), 22);
    }

    #[test]
    fn every_task_names_a_known_benchmark() {
        for t in all_bug_tasks().iter().chain(all_cast_tasks().iter()) {
            assert!(
                benchmark_named(t.benchmark).is_some(),
                "{} references unknown benchmark {}",
                t.id,
                t.benchmark
            );
        }
    }
}
