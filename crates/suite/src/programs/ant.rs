//! The `ant` benchmark: a miniature build system in MJ.
//!
//! Mirrors Ant's dependence shape: targets registered in a `Hashtable`,
//! task lists in `Vector`s, recursive target execution, and a property
//! resolver with many `return` statements — the paper attributes ant-3's
//! high `#Control` to "the buggy function has 12 return statements, and one
//! of them is directly control dependent on the bug" (§6.2).

use crate::spec::{Benchmark, Marker, Task, TaskKind};

/// MJ source of the benchmark.
pub const SOURCE: &str = r#"class BuildTask {
    String name;
    String value;
    BuildTask(String name, String value) {
        this.name = name;
        this.value = value;
    }
}

class Target {
    String name;
    Vector tasks;
    Vector deps;
    Target(String name) {
        this.name = name;
        this.tasks = new Vector();
        this.deps = new Vector();
    }
    void addTask(BuildTask t) {
        this.tasks.add(t);
    }
    void addDep(String dep) {
        this.deps.add(dep);
    }
}

class Project {
    Hashtable targets;
    Hashtable props;
    Project() {
        this.targets = new Hashtable();
        this.props = new Hashtable();
    }
    void addTarget(Target t) {
        this.targets.put(t.name, t);
    }
    Target getTarget(String name) {
        return (Target) this.targets.get(name);
    }
    void setProperty(String key, String value) {
        this.props.put(key, value);
    }
    String getProperty(String key) {
        return (String) this.props.get(key);
    }
    String resolveProperty(String name) {
        if (name.equalsStr("os.name")) {
            return "linux";
        }
        if (name.equalsStr("os.arch")) {
            return "x86";
        }
        if (name.equalsStr("java.version")) {
            return "1.4";
        }
        if (name.equalsStr("build.dir")) {
            String base = this.getProperty("basedir");
            return base + "/build";
        }
        if (name.equalsStr("dist.dir")) {
            String base2 = this.getProperty("basedir");
            return base2 + "/dist";
        }
        if (name.equalsStr("src.dir")) {
            String base3 = this.getProperty("basedir");
            return base3 + "/source";
        }
        if (name.equalsStr("lib.dir")) {
            return "lib";
        }
        if (name.equalsStr("doc.dir")) {
            return "doc";
        }
        if (name.equalsStr("test.dir")) {
            return "test";
        }
        if (name.equalsStr("user.name")) {
            return "builder";
        }
        if (name.equalsStr("project.name")) {
            return this.getProperty("name");
        }
        return this.getProperty(name);
    }
}

class BuildParser {
    InputStream input;
    BuildParser(InputStream input) {
        this.input = input;
    }
    Project parse() {
        Project project = new Project();
        while (!this.input.eof()) {
            String line = this.input.readLine();
            Target target = this.parseTarget(project, line);
            project.addTarget(target);
        }
        return project;
    }
    Target parseTarget(Project project, String line) {
        int cut = line.indexOf(":");
        String targetName = line.substring(0, cut);
        Target target = new Target(targetName);
        String taskValue = line.substring(cut + 1, line.length() - 1);
        BuildTask task = new BuildTask("echo", taskValue);
        target.addTask(task);
        int depCut = line.indexOf(">");
        if (depCut > 0) {
            String depName = line.substring(depCut, line.length());
            target.addDep(depName);
        }
        return target;
    }
}

class Executor {
    Project project;
    int depth;
    Executor(Project project) {
        this.project = project;
        this.depth = 0;
    }
    void execute(String targetName) {
        Target target = this.project.getTarget(targetName);
        if (target == null) {
            throw new RuntimeException("missing dependency: " + targetName);
        }
        this.depth = this.depth + 1;
        if (this.depth > 20) {
            throw new RuntimeException("dependency cycle");
        }
        int i = 0;
        while (i < target.deps.size()) {
            String dep = (String) target.deps.get(i);
            this.execute(dep);
            i = i + 1;
        }
        int j = 0;
        while (j < target.tasks.size()) {
            BuildTask task = (BuildTask) target.tasks.get(j);
            if (task.value == null) {
                throw new RuntimeException("task without value in " + target.name);
            }
            print("run: " + task.value);
            j = j + 1;
        }
        this.depth = this.depth - 1;
    }
}

class Main {
    static void main() {
        InputStream in = new InputStream("build.xml");
        BuildParser parser = new BuildParser(in);
        Project project = parser.parse();
        project.setProperty("basedir", "/work");
        Executor executor = new Executor(project);
        executor.execute("compile");
        String buildDir = project.resolveProperty("build.dir");
        print("build.dir = " + buildDir);
    }
}
"#;

/// The benchmark definition.
pub fn benchmark() -> Benchmark {
    Benchmark {
        name: "ant",
        sources: vec![("ant.mj", SOURCE)],
    }
}

/// The four injected-bug tasks (Table 2 rows ant-1 … ant-4).
pub fn bugs() -> Vec<Task> {
    let m = |snippet: &'static str| Marker {
        file: "ant.mj",
        snippet,
    };
    vec![
        // A task whose value is null; the bug is the task construction one
        // call away, guarded by the null check.
        Task {
            id: "ant-1",
            benchmark: "ant",
            kind: TaskKind::Bug,
            seed: m("throw new RuntimeException(\"task without value in \" + target.name);"),
            desired: vec![m("BuildTask task = new BuildTask(\"echo\", taskValue);")],
            control_deps: 1,
            needs_alias_expansion: false,
            paper_thin: 2,
            paper_trad: 2,
        },
        // The echoed value is wrong; the bug is the substring producing it.
        Task {
            id: "ant-2",
            benchmark: "ant",
            kind: TaskKind::Bug,
            seed: m("print(\"run: \" + task.value);"),
            desired: vec![m(
                "String taskValue = line.substring(cut + 1, line.length() - 1);",
            )],
            control_deps: 0,
            needs_alias_expansion: false,
            paper_thin: 4,
            paper_trad: 5,
        },
        // A wrong resolved property; the resolver has a dozen returns, each
        // a candidate (the paper counts one control dependence per return).
        Task {
            id: "ant-3",
            benchmark: "ant",
            kind: TaskKind::Bug,
            seed: m("print(\"build.dir = \" + buildDir);"),
            desired: vec![m("return base + \"/build\";")],
            control_deps: 15,
            needs_alias_expansion: false,
            paper_thin: 34,
            paper_trad: 55,
        },
        // A "missing dependency" failure; the bug is the dependency-name
        // substring, behind two relevant conditionals.
        Task {
            id: "ant-4",
            benchmark: "ant",
            kind: TaskKind::Bug,
            seed: m("throw new RuntimeException(\"missing dependency: \" + targetName);"),
            desired: vec![m("String depName = line.substring(depCut, line.length());")],
            control_deps: 2,
            needs_alias_expansion: false,
            paper_thin: 3,
            paper_trad: 3,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use thinslice_pta::PtaConfig;

    #[test]
    fn ant_compiles_and_tasks_resolve() {
        let b = benchmark();
        let a = b.analyze(PtaConfig::default());
        for task in bugs() {
            let resolved = task.resolve(&b, &a);
            assert!(!resolved.seeds.is_empty(), "{}: no seeds", task.id);
        }
    }
}
