//! The `jack` benchmark: a parser-generator front end in MJ.
//!
//! Grammar symbols, productions and parse states travel through `Vector`s,
//! a `Hashtable` and a `Stack`; the tough casts sit on container
//! retrievals. This is the benchmark where the paper's `NoObjSens`
//! configuration degrades most (inspected statements grow 5.9–16.9×,
//! §6.3): without per-object container cloning every retrieval conflates
//! all containers' contents.

use crate::spec::{Benchmark, Marker, Task, TaskKind};

/// MJ source of the benchmark.
pub const SOURCE: &str = r#"class Symbol {
    String name;
    boolean terminal;
    Symbol(String name, boolean terminal) {
        this.name = name;
        this.terminal = terminal;
    }
}

class Production {
    Symbol lhs;
    Vector rhs;
    Production(Symbol lhs) {
        this.lhs = lhs;
        this.rhs = new Vector();
    }
    void addSymbol(Symbol s) {
        this.rhs.add(s);
    }
    Symbol symbolAt(int i) {
        return (Symbol) this.rhs.get(i);
    }
    int length() {
        return this.rhs.size();
    }
}

class Grammar {
    Vector productions;
    Hashtable symbolsByName;
    Grammar() {
        this.productions = new Vector();
        this.symbolsByName = new Hashtable();
    }
    Symbol internSymbol(String name, boolean terminal) {
        Symbol existing = (Symbol) this.symbolsByName.get(name);
        if (existing != null) {
            return existing;
        }
        Symbol fresh = new Symbol(name, terminal);
        this.symbolsByName.put(name, fresh);
        return fresh;
    }
    void addProduction(Production p) {
        this.productions.add(p);
    }
    Production productionAt(int i) {
        return (Production) this.productions.get(i);
    }
    int productionCount() {
        return this.productions.size();
    }
}

class GrammarReader {
    InputStream input;
    GrammarReader(InputStream input) {
        this.input = input;
    }
    Grammar read() {
        Grammar grammar = new Grammar();
        while (!this.input.eof()) {
            String line = this.input.readLine();
            int arrow = line.indexOf(":");
            String lhsName = line.substring(0, arrow);
            Symbol lhs = grammar.internSymbol(lhsName, false);
            Production prod = new Production(lhs);
            String rest = line.substring(arrow + 1, line.length());
            int space = rest.indexOf(" ");
            while (space > 0) {
                String symName = rest.substring(0, space);
                Symbol sym = grammar.internSymbol(symName, true);
                prod.addSymbol(sym);
                rest = rest.substring(space + 1, rest.length());
                space = rest.indexOf(" ");
            }
            grammar.addProduction(prod);
        }
        return grammar;
    }
}

class ParseState {
    Production production;
    int dot;
    ParseState(Production production, int dot) {
        this.production = production;
        this.dot = dot;
    }
}

class ParserGenerator {
    Grammar grammar;
    Stack work;
    Vector states;
    ParserGenerator(Grammar grammar) {
        this.grammar = grammar;
        this.work = new Stack();
        this.states = new Vector();
    }
    void generate() {
        int i = 0;
        while (i < this.grammar.productionCount()) {
            Production p = this.grammar.productionAt(i);
            this.work.push(new ParseState(p, 0));
            i = i + 1;
        }
        while (!this.work.isEmpty()) {
            ParseState state = (ParseState) this.work.pop();
            this.states.add(state);
            this.advance(state);
        }
    }
    void advance(ParseState state) {
        if (state.dot < state.production.length()) {
            Symbol next = state.production.symbolAt(state.dot);
            if (!next.terminal) {
                this.expand(next);
            }
            this.work.push(new ParseState(state.production, state.dot + 1));
        }
    }
    void expand(Symbol symbol) {
        int i = 0;
        while (i < this.grammar.productionCount()) {
            Production q = this.grammar.productionAt(i);
            if (q.lhs == symbol) {
                print("expand: " + symbol.name);
            }
            i = i + 1;
        }
    }
    ParseState stateAt(int i) {
        return (ParseState) this.states.get(i);
    }
    int stateCount() {
        return this.states.size();
    }
}

class Main {
    static void main() {
        InputStream in = new InputStream("grammar.jack");
        GrammarReader reader = new GrammarReader(in);
        Grammar grammar = reader.read();
        ParserGenerator generator = new ParserGenerator(grammar);
        generator.generate();
        int i = 0;
        while (i < generator.stateCount()) {
            ParseState state = generator.stateAt(i);
            Symbol head = state.production.lhs;
            print("state for: " + head.name);
            i = i + 1;
        }
        Symbol lookup = (Symbol) grammar.symbolsByName.get("start");
        if (lookup != null) {
            print("start symbol: " + lookup.name);
        }
    }
}
"#;

/// The benchmark definition.
pub fn benchmark() -> Benchmark {
    Benchmark {
        name: "jack",
        sources: vec![("jack.mj", SOURCE)],
    }
}

/// The ten tough-cast tasks (Table 3 rows jack-1 … jack-10).
pub fn casts() -> Vec<Task> {
    let m = |snippet: &'static str| Marker {
        file: "jack.mj",
        snippet,
    };
    vec![
        Task {
            id: "jack-1",
            benchmark: "jack",
            kind: TaskKind::ToughCast,
            seed: m("return (Symbol) this.rhs.get(i);"),
            desired: vec![m("this.rhs.add(s);")],
            control_deps: 0,
            needs_alias_expansion: false,
            paper_thin: 18,
            paper_trad: 79,
        },
        Task {
            id: "jack-2",
            benchmark: "jack",
            kind: TaskKind::ToughCast,
            seed: m("ParseState state = (ParseState) this.work.pop();"),
            desired: vec![
                m("this.work.push(new ParseState(p, 0));"),
                m("this.work.push(new ParseState(state.production, state.dot + 1));"),
            ],
            control_deps: 0,
            needs_alias_expansion: false,
            paper_thin: 57,
            paper_trad: 151,
        },
        Task {
            id: "jack-3",
            benchmark: "jack",
            kind: TaskKind::ToughCast,
            seed: m("return (Production) this.productions.get(i);"),
            desired: vec![m("this.productions.add(p);")],
            control_deps: 0,
            needs_alias_expansion: false,
            paper_thin: 18,
            paper_trad: 69,
        },
        Task {
            id: "jack-4",
            benchmark: "jack",
            kind: TaskKind::ToughCast,
            seed: m("Symbol existing = (Symbol) this.symbolsByName.get(name);"),
            desired: vec![m("this.symbolsByName.put(name, fresh);")],
            control_deps: 0,
            needs_alias_expansion: false,
            paper_thin: 18,
            paper_trad: 79,
        },
        Task {
            id: "jack-5",
            benchmark: "jack",
            kind: TaskKind::ToughCast,
            seed: m("return (ParseState) this.states.get(i);"),
            desired: vec![m("this.states.add(state);")],
            control_deps: 0,
            needs_alias_expansion: false,
            paper_thin: 57,
            paper_trad: 151,
        },
        Task {
            id: "jack-6",
            benchmark: "jack",
            kind: TaskKind::ToughCast,
            seed: m("Symbol lookup = (Symbol) grammar.symbolsByName.get(\"start\");"),
            desired: vec![m("this.symbolsByName.put(name, fresh);")],
            control_deps: 0,
            needs_alias_expansion: false,
            paper_thin: 35,
            paper_trad: 132,
        },
        // The remaining rows exercise the same retrievals from different
        // seeds, as in the paper's randomly-sampled cast set.
        Task {
            id: "jack-7",
            benchmark: "jack",
            kind: TaskKind::ToughCast,
            seed: m("Symbol next = state.production.symbolAt(state.dot);"),
            desired: vec![m("this.rhs.add(s);")],
            control_deps: 0,
            needs_alias_expansion: false,
            paper_thin: 35,
            paper_trad: 132,
        },
        Task {
            id: "jack-8",
            benchmark: "jack",
            kind: TaskKind::ToughCast,
            seed: m("Production p = this.grammar.productionAt(i);"),
            desired: vec![m("grammar.addProduction(prod);")],
            control_deps: 0,
            needs_alias_expansion: false,
            paper_thin: 35,
            paper_trad: 132,
        },
        Task {
            id: "jack-9",
            benchmark: "jack",
            kind: TaskKind::ToughCast,
            seed: m("ParseState state = generator.stateAt(i);"),
            desired: vec![m("this.states.add(state);")],
            control_deps: 0,
            needs_alias_expansion: false,
            paper_thin: 30,
            paper_trad: 79,
        },
        Task {
            id: "jack-10",
            benchmark: "jack",
            kind: TaskKind::ToughCast,
            seed: m("Symbol head = state.production.lhs;"),
            desired: vec![m("Production prod = new Production(lhs);")],
            control_deps: 0,
            needs_alias_expansion: false,
            paper_thin: 57,
            paper_trad: 151,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use thinslice_pta::PtaConfig;

    #[test]
    fn jack_compiles_and_tasks_resolve() {
        let b = benchmark();
        let a = b.analyze(PtaConfig::default());
        for task in casts() {
            let resolved = task.resolve(&b, &a);
            assert!(!resolved.seeds.is_empty(), "{}: no seeds", task.id);
        }
    }
}
