//! The `javac` benchmark: an expression-tree compiler front end in MJ.
//!
//! Reproduces the paper's Figure 5 situation at scale: "the code includes a
//! large number of Node subclasses used pervasively in the program,
//! resulting in large numbers for the traditional slicer" (§6.3). Each
//! subclass constructor writes a distinct opcode into `Node.op`; the
//! optimizer switches on `op` and downcasts. The safety of those downcasts
//! is a whole-program invariant over the constructor writes — exactly what
//! a thin slice from the `op` read reveals.

use crate::spec::{Benchmark, Marker, Task, TaskKind};

/// MJ source of the benchmark.
pub const SOURCE: &str = r##"class Node {
    int op;
    Node(int op) {
        this.op = op;
    }
}

class AddNode extends Node {
    Node left;
    Node right;
    AddNode(Node left, Node right) {
        super(1);
        this.left = left;
        this.right = right;
    }
}

class SubNode extends Node {
    Node left;
    Node right;
    SubNode(Node left, Node right) {
        super(2);
        this.left = left;
        this.right = right;
    }
}

class MulNode extends Node {
    Node left;
    Node right;
    MulNode(Node left, Node right) {
        super(3);
        this.left = left;
        this.right = right;
    }
}

class DivNode extends Node {
    Node left;
    Node right;
    DivNode(Node left, Node right) {
        super(4);
        this.left = left;
        this.right = right;
    }
}

class NegNode extends Node {
    Node operand;
    NegNode(Node operand) {
        super(5);
        this.operand = operand;
    }
}

class ConstNode extends Node {
    int value;
    ConstNode(int value) {
        super(6);
        this.value = value;
    }
}

class VarNode extends Node {
    String name;
    VarNode(String name) {
        super(7);
        this.name = name;
    }
}

class AssignNode extends Node {
    VarNode target;
    Node rhs;
    AssignNode(VarNode target, Node rhs) {
        super(8);
        this.target = target;
        this.rhs = rhs;
    }
}

class CallNode extends Node {
    String callee;
    Vector arguments;
    CallNode(String callee) {
        super(9);
        this.callee = callee;
        this.arguments = new Vector();
    }
    void addArgument(Node arg) {
        this.arguments.add(arg);
    }
}

class BlockNode extends Node {
    Vector statements;
    BlockNode() {
        super(10);
        this.statements = new Vector();
    }
    void addStatement(Node stmt) {
        this.statements.add(stmt);
    }
}

class IfNode extends Node {
    Node condition;
    Node thenPart;
    IfNode(Node condition, Node thenPart) {
        super(11);
        this.condition = condition;
        this.thenPart = thenPart;
    }
}

class WhileNode extends Node {
    Node condition;
    Node body;
    WhileNode(Node condition, Node body) {
        super(12);
        this.condition = condition;
        this.body = body;
    }
}

class ExprParser {
    InputStream input;
    Hashtable variables;
    ExprParser(InputStream input) {
        this.input = input;
        this.variables = new Hashtable();
    }
    BlockNode parseProgram() {
        BlockNode block = new BlockNode();
        while (!this.input.eof()) {
            String line = this.input.readLine();
            Node stmt = this.parseStatement(line);
            block.addStatement(stmt);
        }
        return block;
    }
    Node parseStatement(String line) {
        int eq = line.indexOf("=");
        if (eq > 0) {
            String varName = line.substring(0, eq);
            VarNode target = new VarNode(varName);
            this.variables.put(varName, target);
            Node rhs = this.parseExpression(line.substring(eq + 1, line.length()));
            return new AssignNode(target, rhs);
        }
        int q = line.indexOf("?");
        if (q > 0) {
            Node cond = this.parseExpression(line.substring(0, q));
            Node then = this.parseExpression(line.substring(q + 1, line.length()));
            return new IfNode(cond, then);
        }
        int star = line.indexOf("@");
        if (star > 0) {
            Node cond2 = this.parseExpression(line.substring(0, star));
            Node body = this.parseExpression(line.substring(star + 1, line.length()));
            return new WhileNode(cond2, body);
        }
        return this.parseExpression(line);
    }
    Node parseExpression(String text) {
        int plus = text.indexOf("+");
        if (plus > 0) {
            Node l1 = this.parseExpression(text.substring(0, plus));
            Node r1 = this.parseExpression(text.substring(plus + 1, text.length()));
            return new AddNode(l1, r1);
        }
        int minus = text.indexOf("-");
        if (minus > 0) {
            Node l2 = this.parseExpression(text.substring(0, minus));
            Node r2 = this.parseExpression(text.substring(minus + 1, text.length()));
            return new SubNode(l2, r2);
        }
        int times = text.indexOf("*");
        if (times > 0) {
            Node l3 = this.parseExpression(text.substring(0, times));
            Node r3 = this.parseExpression(text.substring(times + 1, text.length()));
            return new MulNode(l3, r3);
        }
        int slash = text.indexOf("/");
        if (slash > 0) {
            Node l4 = this.parseExpression(text.substring(0, slash));
            Node r4 = this.parseExpression(text.substring(slash + 1, text.length()));
            return new DivNode(l4, r4);
        }
        int bang = text.indexOf("~");
        if (bang == 0) {
            return new NegNode(this.parseExpression(text.substring(1, text.length())));
        }
        int paren = text.indexOf("(");
        if (paren > 0) {
            CallNode call = new CallNode(text.substring(0, paren));
            call.addArgument(this.parseExpression(text.substring(paren + 1, text.length() - 1)));
            return call;
        }
        int digit = text.indexOf("#");
        if (digit == 0) {
            return new ConstNode(text.toInt());
        }
        VarNode v = (VarNode) this.variables.get(text);
        if (v != null) {
            return v;
        }
        return new VarNode(text);
    }
}

class Optimizer {
    int folded;
    Optimizer() {
        this.folded = 0;
    }
    Node simplify(Node n) {
        int op = n.op;
        if (op == 1) {
            AddNode add = (AddNode) n;
            Node sl = this.simplify(add.left);
            Node sr = this.simplify(add.right);
            return this.foldBinary(1, sl, sr);
        }
        if (op == 3) {
            MulNode mul = (MulNode) n;
            Node ml = this.simplify(mul.left);
            Node mr = this.simplify(mul.right);
            return this.foldBinary(3, ml, mr);
        }
        if (op == 9) {
            CallNode call = (CallNode) n;
            int i = 0;
            while (i < call.arguments.size()) {
                Node arg = (Node) call.arguments.get(i);
                this.simplify(arg);
                i = i + 1;
            }
            return call;
        }
        if (op == 11) {
            IfNode cond = (IfNode) n;
            Node simplified = this.simplify(cond.condition);
            return new IfNode(simplified, this.simplify(cond.thenPart));
        }
        if (op == 10) {
            BlockNode block = (BlockNode) n;
            int j = 0;
            while (j < block.statements.size()) {
                Node stmt = (Node) block.statements.get(j);
                this.simplify(stmt);
                j = j + 1;
            }
            return block;
        }
        return n;
    }
    Node foldBinary(int op, Node left, Node right) {
        if (left instanceof ConstNode && right instanceof ConstNode) {
            ConstNode cl = (ConstNode) left;
            ConstNode cr = (ConstNode) right;
            this.folded = this.folded + 1;
            if (op == 1) {
                return new ConstNode(cl.value + cr.value);
            }
            return new ConstNode(cl.value * cr.value);
        }
        if (op == 1) {
            return new AddNode(left, right);
        }
        return new MulNode(left, right);
    }
}

class Evaluator {
    Hashtable env;
    Evaluator() {
        this.env = new Hashtable();
    }
    int eval(Node n) {
        int op = n.op;
        if (op == 6) {
            ConstNode k = (ConstNode) n;
            return k.value;
        }
        if (op == 1) {
            AddNode addExpr = (AddNode) n;
            return this.eval(addExpr.left) + this.eval(addExpr.right);
        }
        if (op == 2) {
            SubNode subExpr = (SubNode) n;
            return this.eval(subExpr.left) - this.eval(subExpr.right);
        }
        if (op == 3) {
            MulNode mulExpr = (MulNode) n;
            return this.eval(mulExpr.left) * this.eval(mulExpr.right);
        }
        if (op == 5) {
            NegNode negExpr = (NegNode) n;
            return -this.eval(negExpr.operand);
        }
        if (op == 8) {
            AssignNode assign = (AssignNode) n;
            int value = this.eval(assign.rhs);
            this.env.put(assign.target.name, new ConstNode(value));
            return value;
        }
        if (op == 7) {
            VarNode ref = (VarNode) n;
            ConstNode bound = (ConstNode) this.env.get(ref.name);
            if (bound == null) {
                return 0;
            }
            return bound.value;
        }
        if (op == 10) {
            BlockNode blockExpr = (BlockNode) n;
            int last = 0;
            int i = 0;
            while (i < blockExpr.statements.size()) {
                last = this.eval((Node) blockExpr.statements.get(i));
                i = i + 1;
            }
            return last;
        }
        return 0;
    }
}

class TypeChecker {
    Vector errors;
    TypeChecker() {
        this.errors = new Vector();
    }
    void check(Node n) {
        int op = n.op;
        if (op == 8) {
            AssignNode assignStmt = (AssignNode) n;
            this.check(assignStmt.rhs);
            if (assignStmt.target == null) {
                this.errors.add("assignment without target");
            }
        }
        if (op == 11) {
            IfNode branch = (IfNode) n;
            this.check(branch.condition);
            this.check(branch.thenPart);
        }
        if (op == 12) {
            WhileNode loop = (WhileNode) n;
            this.check(loop.condition);
            this.check(loop.body);
        }
        if (op == 10) {
            BlockNode blockStmt = (BlockNode) n;
            int i = 0;
            while (i < blockStmt.statements.size()) {
                this.check((Node) blockStmt.statements.get(i));
                i = i + 1;
            }
        }
        if (op == 4) {
            DivNode divisor = (DivNode) n;
            this.check(divisor.left);
            this.check(divisor.right);
            if (divisor.right instanceof ConstNode) {
                ConstNode c = (ConstNode) divisor.right;
                if (c.value == 0) {
                    this.errors.add("division by constant zero");
                }
            }
        }
    }
    int errorCount() {
        return this.errors.size();
    }
}

class Main {
    static void main() {
        InputStream in = new InputStream("program.src");
        ExprParser parser = new ExprParser(in);
        BlockNode program = parser.parseProgram();
        TypeChecker checker = new TypeChecker();
        checker.check(program);
        print("errors: " + "" + checker.errorCount());
        Optimizer opt = new Optimizer();
        Node result = opt.simplify(program);
        print("folded: " + "" + opt.folded);
        if (result == null) {
            throw new RuntimeException("optimizer returned null");
        }
        Evaluator evaluator = new Evaluator();
        print("value: " + "" + evaluator.eval(result));
        print("done");
    }
}
"##;

/// The benchmark definition.
pub fn benchmark() -> Benchmark {
    Benchmark {
        name: "javac",
        sources: vec![("javac.mj", SOURCE)],
    }
}

/// The four tough-cast tasks (Table 3 rows javac-1 … javac-4).
///
/// Each cast `(XNode) n` in `Optimizer.simplify` is safe because `n.op`
/// matches the opcode only `XNode`'s constructor writes. Verifying that
/// invariant requires seeing *every* opcode write (any constructor could
/// have reused the opcode), so the desired set is all twelve `super(k)`
/// statements — "writes of opcodes in a large number of constructors,
/// which could be quickly inspected" (§6.3).
pub fn casts() -> Vec<Task> {
    let m = |snippet: &'static str| Marker {
        file: "javac.mj",
        snippet,
    };
    vec![
        Task {
            id: "javac-1",
            benchmark: "javac",
            kind: TaskKind::ToughCast,
            seed: m("AddNode add = (AddNode) n;"),
            desired: vec![
                m("super(1);"),
                m("super(2);"),
                m("super(3);"),
                m("super(4);"),
                m("super(5);"),
                m("super(6);"),
                m("super(7);"),
                m("super(8);"),
                m("super(9);"),
                m("super(10);"),
                m("super(11);"),
                m("super(12);"),
            ],
            control_deps: 1,
            needs_alias_expansion: false,
            paper_thin: 57,
            paper_trad: 910,
        },
        Task {
            id: "javac-2",
            benchmark: "javac",
            kind: TaskKind::ToughCast,
            seed: m("MulNode mul = (MulNode) n;"),
            desired: vec![
                m("super(1);"),
                m("super(2);"),
                m("super(3);"),
                m("super(4);"),
                m("super(5);"),
                m("super(6);"),
                m("super(7);"),
                m("super(8);"),
                m("super(9);"),
                m("super(10);"),
                m("super(11);"),
                m("super(12);"),
            ],
            control_deps: 1,
            needs_alias_expansion: false,
            paper_thin: 43,
            paper_trad: 853,
        },
        Task {
            id: "javac-3",
            benchmark: "javac",
            kind: TaskKind::ToughCast,
            seed: m("CallNode call = (CallNode) n;"),
            desired: vec![
                m("super(1);"),
                m("super(2);"),
                m("super(3);"),
                m("super(4);"),
                m("super(5);"),
                m("super(6);"),
                m("super(7);"),
                m("super(8);"),
                m("super(9);"),
                m("super(10);"),
                m("super(11);"),
                m("super(12);"),
            ],
            control_deps: 1,
            needs_alias_expansion: false,
            paper_thin: 65,
            paper_trad: 2224,
        },
        Task {
            id: "javac-4",
            benchmark: "javac",
            kind: TaskKind::ToughCast,
            seed: m("IfNode cond = (IfNode) n;"),
            desired: vec![
                m("super(1);"),
                m("super(2);"),
                m("super(3);"),
                m("super(4);"),
                m("super(5);"),
                m("super(6);"),
                m("super(7);"),
                m("super(8);"),
                m("super(9);"),
                m("super(10);"),
                m("super(11);"),
                m("super(12);"),
            ],
            control_deps: 1,
            needs_alias_expansion: false,
            paper_thin: 45,
            paper_trad: 855,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use thinslice_pta::PtaConfig;

    #[test]
    fn javac_compiles_and_tasks_resolve() {
        let b = benchmark();
        let a = b.analyze(PtaConfig::default());
        for task in casts() {
            let resolved = task.resolve(&b, &a);
            assert!(!resolved.seeds.is_empty(), "{}: no seeds", task.id);
        }
    }

    #[test]
    fn the_casts_are_actually_tough() {
        // A tough cast is one the pointer analysis cannot verify: `n` may
        // point to any Node subclass at the cast site.
        let b = benchmark();
        let a = b.analyze(PtaConfig::default());
        let line = crate::spec::line_with(SOURCE, "AddNode add = (AddNode) n;");
        let stmts = a.stmts_at_line("javac.mj", line);
        let cast = stmts
            .iter()
            .find_map(|s| match &a.program.instr(*s).kind {
                thinslice_ir::InstrKind::Cast {
                    src: thinslice_ir::Operand::Var(v),
                    ty,
                    ..
                } => Some((s.method, *v, ty.clone())),
                _ => None,
            })
            .expect("cast statement on the line");
        assert!(
            !a.pta.cast_is_verified(&a.program, cast.0, cast.1, &cast.2),
            "the (AddNode) cast must be unverifiable by the pointer analysis"
        );
    }
}
