//! The `jess` benchmark: a miniature rule engine in MJ.
//!
//! Facts carry tagged slot values; the matcher switches on the tag and
//! downcasts. Most of the paper's jess casts are cheap for both slicers
//! (ratios near 1, two relevant control dependences); jess-2 retrieves a
//! value from working memory and costs more for the traditional slicer.

use crate::spec::{Benchmark, Marker, Task, TaskKind};

/// MJ source of the benchmark.
pub const SOURCE: &str = r#"class Value {
    int kind;
    Value(int kind) {
        this.kind = kind;
    }
}

class IntValue extends Value {
    int num;
    IntValue(int num) {
        super(1);
        this.num = num;
    }
}

class StrValue extends Value {
    String text;
    StrValue(String text) {
        super(2);
        this.text = text;
    }
}

class SymbolValue extends Value {
    String symbol;
    SymbolValue(String symbol) {
        super(3);
        this.symbol = symbol;
    }
}

class Fact {
    String head;
    Vector slots;
    Fact(String head) {
        this.head = head;
        this.slots = new Vector();
    }
    void addSlot(Value v) {
        this.slots.add(v);
    }
    Value slotAt(int i) {
        return (Value) this.slots.get(i);
    }
    int slotCount() {
        return this.slots.size();
    }
}

class WorkingMemory {
    Vector facts;
    WorkingMemory() {
        this.facts = new Vector();
    }
    void assertFact(Fact f) {
        this.facts.add(f);
    }
    Fact factAt(int i) {
        return (Fact) this.facts.get(i);
    }
    int factCount() {
        return this.facts.size();
    }
}

class FactReader {
    InputStream input;
    FactReader(InputStream input) {
        this.input = input;
    }
    void readInto(WorkingMemory memory) {
        while (!this.input.eof()) {
            String line = this.input.readLine();
            Fact fact = new Fact(line.substring(0, line.indexOf(" ")));
            int tag = this.input.readInt();
            if (tag == 1) {
                fact.addSlot(new IntValue(this.input.readInt()));
            }
            if (tag == 2) {
                fact.addSlot(new StrValue(this.input.readLine()));
            }
            if (tag == 3) {
                fact.addSlot(new SymbolValue(this.input.readLine()));
            }
            memory.assertFact(fact);
        }
    }
}

class Matcher {
    int fired;
    Matcher() {
        this.fired = 0;
    }
    void matchAll(WorkingMemory memory) {
        int i = 0;
        while (i < memory.factCount()) {
            Fact fact = memory.factAt(i);
            int j = 0;
            while (j < fact.slotCount()) {
                this.matchSlot(fact.slotAt(j));
                j = j + 1;
            }
            i = i + 1;
        }
    }
    void matchSlot(Value v) {
        int kind = v.kind;
        if (kind == 1) {
            IntValue iv = (IntValue) v;
            if (iv.num > 100) {
                this.fired = this.fired + 1;
            }
        }
        if (kind == 2) {
            StrValue sv = (StrValue) v;
            if (sv.text.length() > 5) {
                this.fired = this.fired + 1;
            }
        }
        if (kind == 3) {
            SymbolValue yv = (SymbolValue) v;
            print("symbol: " + yv.symbol);
        }
    }
    Value bestSlot(WorkingMemory memory) {
        Value best = null;
        int i = 0;
        while (i < memory.factCount()) {
            Fact candidate = memory.factAt(i);
            if (candidate.slotCount() > 0) {
                best = candidate.slotAt(0);
            }
            i = i + 1;
        }
        return best;
    }
}

class Agenda {
    Stack pending;
    Agenda() {
        this.pending = new Stack();
    }
    void push(Fact f) {
        this.pending.push(f);
    }
    Fact pop() {
        return (Fact) this.pending.pop();
    }
    boolean isEmpty() {
        return this.pending.isEmpty();
    }
}

class Main {
    static void main() {
        InputStream in = new InputStream("facts.clp");
        WorkingMemory memory = new WorkingMemory();
        FactReader reader = new FactReader(in);
        reader.readInto(memory);
        Matcher matcher = new Matcher();
        matcher.matchAll(memory);
        Value best = matcher.bestSlot(memory);
        if (best instanceof IntValue) {
            IntValue bestInt = (IntValue) best;
            print("best: " + "" + bestInt.num);
        }
        Agenda agenda = new Agenda();
        int k = 0;
        while (k < memory.factCount()) {
            agenda.push(memory.factAt(k));
            k = k + 1;
        }
        while (!agenda.isEmpty()) {
            Fact next = agenda.pop();
            print("agenda: " + next.head);
        }
        print("fired: " + "" + matcher.fired);
    }
}
"#;

/// The benchmark definition.
pub fn benchmark() -> Benchmark {
    Benchmark {
        name: "jess",
        sources: vec![("jess.mj", SOURCE)],
    }
}

/// The six tough-cast tasks (Table 3 rows jess-1 … jess-6).
pub fn casts() -> Vec<Task> {
    let m = |snippet: &'static str| Marker {
        file: "jess.mj",
        snippet,
    };
    vec![
        Task {
            id: "jess-1",
            benchmark: "jess",
            kind: TaskKind::ToughCast,
            seed: m("IntValue iv = (IntValue) v;"),
            desired: vec![m("super(1);"), m("super(2);"), m("super(3);")],
            control_deps: 2,
            needs_alias_expansion: false,
            paper_thin: 6,
            paper_trad: 7,
        },
        Task {
            id: "jess-2",
            benchmark: "jess",
            kind: TaskKind::ToughCast,
            seed: m("IntValue bestInt = (IntValue) best;"),
            desired: vec![m("fact.addSlot(new IntValue(this.input.readInt()));")],
            control_deps: 0,
            needs_alias_expansion: false,
            paper_thin: 13,
            paper_trad: 39,
        },
        Task {
            id: "jess-3",
            benchmark: "jess",
            kind: TaskKind::ToughCast,
            seed: m("StrValue sv = (StrValue) v;"),
            desired: vec![m("super(1);"), m("super(2);"), m("super(3);")],
            control_deps: 2,
            needs_alias_expansion: false,
            paper_thin: 6,
            paper_trad: 6,
        },
        Task {
            id: "jess-4",
            benchmark: "jess",
            kind: TaskKind::ToughCast,
            seed: m("SymbolValue yv = (SymbolValue) v;"),
            desired: vec![m("super(1);"), m("super(2);"), m("super(3);")],
            control_deps: 2,
            needs_alias_expansion: false,
            paper_thin: 6,
            paper_trad: 7,
        },
        Task {
            id: "jess-5",
            benchmark: "jess",
            kind: TaskKind::ToughCast,
            seed: m("return (Fact) this.pending.pop();"),
            desired: vec![m("agenda.push(memory.factAt(k));")],
            control_deps: 2,
            needs_alias_expansion: false,
            paper_thin: 6,
            paper_trad: 7,
        },
        Task {
            id: "jess-6",
            benchmark: "jess",
            kind: TaskKind::ToughCast,
            seed: m("return (Fact) this.facts.get(i);"),
            desired: vec![m("memory.assertFact(fact);")],
            control_deps: 2,
            needs_alias_expansion: false,
            paper_thin: 6,
            paper_trad: 6,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use thinslice_pta::PtaConfig;

    #[test]
    fn jess_compiles_and_tasks_resolve() {
        let b = benchmark();
        let a = b.analyze(PtaConfig::default());
        for task in casts() {
            let resolved = task.resolve(&b, &a);
            assert!(!resolved.seeds.is_empty(), "{}: no seeds", task.id);
        }
    }
}
