//! The `jtopas` benchmark: a small tokenizer in MJ.
//!
//! In the paper both jtopas bugs sit essentially at the failure point
//! ("with jtopas-1, the buggy statement itself fails with a
//! NullPointerException"), so thin and traditional slicing tie at 1–2
//! inspected statements. The program still exercises token objects stored
//! in a `Vector` so the non-trivial machinery is present.

use crate::spec::{Benchmark, Marker, Task, TaskKind};

/// MJ source of the benchmark.
pub const SOURCE: &str = r#"class Token {
    String image;
    int kind;
    Token(String image, int kind) {
        this.image = image;
        this.kind = kind;
    }
}

class Tokenizer {
    InputStream input;
    Vector tokens;
    Vector keywords;
    int pos;
    Tokenizer(InputStream input) {
        this.input = input;
        this.tokens = new Vector();
        this.keywords = new Vector();
        this.pos = 0;
    }
    void tokenize() {
        while (!this.input.eof()) {
            String line = this.input.readLine();
            int cut = line.indexOf(" ");
            String image = line.substring(0, cut);
            Token t = new Token(image, this.classify(image));
            this.tokens.add(t);
            if (t.kind == 2) {
                this.keywords.add(t);
            }
        }
    }
    int keywordCount() {
        return this.keywords.size();
    }
    int classify(String image) {
        if (image.length() > 3) {
            return 2;
        }
        return 1;
    }
    boolean hasNext() {
        return this.pos < this.tokens.size();
    }
    Token next() {
        Token t = (Token) this.tokens.get(this.pos);
        this.pos = this.pos + 1;
        return t;
    }
    Token peekBeyondEnd() {
        return (Token) this.tokens.get(this.tokens.size());
    }
}

class Main {
    static void main() {
        InputStream in = new InputStream("input.txt");
        Tokenizer tok = new Tokenizer(in);
        tok.tokenize();
        print("keywords: " + "" + tok.keywordCount());
        while (tok.hasNext()) {
            Token t = tok.next();
            if (t.kind == 2) {
                throw new RuntimeException("keyword not allowed: " + t.image);
            }
            print(t.image);
        }
        Token ghost = tok.peekBeyondEnd();
        String head = ghost.image.substring(0, 1);
        print(head);
    }
}
"#;

/// The benchmark definition.
pub fn benchmark() -> Benchmark {
    Benchmark {
        name: "jtopas",
        sources: vec![("jtopas.mj", SOURCE)],
    }
}

/// The two injected-bug tasks (Table 2 rows jtopas-1, jtopas-2).
pub fn bugs() -> Vec<Task> {
    let m = |snippet: &'static str| Marker {
        file: "jtopas.mj",
        snippet,
    };
    vec![
        // The buggy statement itself fails (a null dereference — `ghost`
        // is an out-of-range read): seed == desired, one inspection.
        Task {
            id: "jtopas-1",
            benchmark: "jtopas",
            kind: TaskKind::Bug,
            seed: m("String head = ghost.image.substring(0, 1);"),
            desired: vec![m("String head = ghost.image.substring(0, 1);")],
            control_deps: 0,
            needs_alias_expansion: false,
            paper_thin: 1,
            paper_trad: 1,
        },
        // A spurious "keyword" exception; the classification threshold is
        // the bug, one step from the failing throw, guarded by one
        // relevant conditional.
        Task {
            id: "jtopas-2",
            benchmark: "jtopas",
            kind: TaskKind::Bug,
            seed: m("throw new RuntimeException(\"keyword not allowed: \" + t.image);"),
            desired: vec![m("return 2;")],
            control_deps: 1,
            needs_alias_expansion: false,
            paper_thin: 2,
            paper_trad: 2,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use thinslice_pta::PtaConfig;

    #[test]
    fn jtopas_compiles_and_tasks_resolve() {
        let b = benchmark();
        let a = b.analyze(PtaConfig::default());
        for task in bugs() {
            let resolved = task.resolve(&b, &a);
            assert!(!resolved.seeds.is_empty(), "{}: no seeds", task.id);
        }
    }
}
