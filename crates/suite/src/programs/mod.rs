//! The eight benchmark programs.

pub mod ant;
pub mod jack;
pub mod javac;
pub mod jess;
pub mod jtopas;
pub mod mtrt;
pub mod nanoxml;
pub mod xmlsec;
