//! The `mtrt` benchmark: a toy ray tracer in MJ.
//!
//! Scene shapes are held behind an abstract `Shape` with a `kind` tag;
//! the intersection code switches on the tag and downcasts. Two tough
//! casts, no relevant control flow beyond the dispatching conditionals.

use crate::spec::{Benchmark, Marker, Task, TaskKind};

/// MJ source of the benchmark.
pub const SOURCE: &str = r#"class Vec3 {
    int x;
    int y;
    int z;
    Vec3(int x, int y, int z) {
        this.x = x;
        this.y = y;
        this.z = z;
    }
    int dot(Vec3 other) {
        return this.x * other.x + this.y * other.y + this.z * other.z;
    }
}

class Shape {
    int kind;
    Vec3 center;
    Shape(int kind, Vec3 center) {
        this.kind = kind;
        this.center = center;
    }
}

class SphereShape extends Shape {
    int radius;
    SphereShape(Vec3 center, int radius) {
        super(1, center);
        this.radius = radius;
    }
}

class TriangleShape extends Shape {
    Vec3 corner2;
    Vec3 corner3;
    TriangleShape(Vec3 corner1, Vec3 corner2, Vec3 corner3) {
        super(2, corner1);
        this.corner2 = corner2;
        this.corner3 = corner3;
    }
}

class Ray {
    Vec3 origin;
    Vec3 direction;
    Ray(Vec3 origin, Vec3 direction) {
        this.origin = origin;
        this.direction = direction;
    }
}

class Scene {
    Vector shapes;
    Scene() {
        this.shapes = new Vector();
    }
    void addShape(Shape s) {
        this.shapes.add(s);
    }
    int shapeCount() {
        return this.shapes.size();
    }
    Shape shapeAt(int i) {
        return (Shape) this.shapes.get(i);
    }
}

class SceneLoader {
    InputStream input;
    SceneLoader(InputStream input) {
        this.input = input;
    }
    Scene load() {
        Scene scene = new Scene();
        while (!this.input.eof()) {
            int tag = this.input.readInt();
            Vec3 c = new Vec3(this.input.readInt(), this.input.readInt(), this.input.readInt());
            if (tag == 1) {
                scene.addShape(new SphereShape(c, this.input.readInt()));
            } else {
                Vec3 c2 = new Vec3(this.input.readInt(), 0, 0);
                Vec3 c3 = new Vec3(0, this.input.readInt(), 0);
                scene.addShape(new TriangleShape(c, c2, c3));
            }
        }
        return scene;
    }
}

class Intersector {
    int hits;
    Vector hitLog;
    Intersector() {
        this.hits = 0;
        this.hitLog = new Vector();
    }
    int intersect(Ray ray, Shape shape) {
        int kind = shape.kind;
        if (kind == 1) {
            SphereShape sphere = (SphereShape) shape;
            int along = ray.direction.dot(sphere.center);
            int reach = along - sphere.radius;
            if (reach < 0) {
                this.hits = this.hits + 1;
                this.hitLog.add(sphere);
                return 1;
            }
            return 0;
        }
        TriangleShape triangle = (TriangleShape) shape;
        int edge = ray.direction.dot(triangle.corner2);
        int other = ray.direction.dot(triangle.corner3);
        if (edge > 0 && other > 0) {
            this.hits = this.hits + 1;
            return 1;
        }
        return 0;
    }
}

class Main {
    static void main() {
        InputStream in = new InputStream("scene.dat");
        SceneLoader loader = new SceneLoader(in);
        Scene scene = loader.load();
        Ray ray = new Ray(new Vec3(0, 0, 0), new Vec3(1, 1, 1));
        Intersector inter = new Intersector();
        int i = 0;
        int total = 0;
        while (i < scene.shapeCount()) {
            Shape shape = scene.shapeAt(i);
            total = total + inter.intersect(ray, shape);
            i = i + 1;
        }
        print("hits: " + "" + total);
        print("logged: " + "" + inter.hitLog.size());
    }
}
"#;

/// The benchmark definition.
pub fn benchmark() -> Benchmark {
    Benchmark {
        name: "mtrt",
        sources: vec![("mtrt.mj", SOURCE)],
    }
}

/// The two tough-cast tasks (Table 3 rows mtrt-1, mtrt-2).
pub fn casts() -> Vec<Task> {
    let m = |snippet: &'static str| Marker {
        file: "mtrt.mj",
        snippet,
    };
    vec![
        Task {
            id: "mtrt-1",
            benchmark: "mtrt",
            kind: TaskKind::ToughCast,
            seed: m("SphereShape sphere = (SphereShape) shape;"),
            desired: vec![
                m("scene.addShape(new SphereShape(c, this.input.readInt()));"),
                m("scene.addShape(new TriangleShape(c, c2, c3));"),
            ],
            control_deps: 0,
            needs_alias_expansion: false,
            paper_thin: 22,
            paper_trad: 51,
        },
        Task {
            id: "mtrt-2",
            benchmark: "mtrt",
            kind: TaskKind::ToughCast,
            seed: m("TriangleShape triangle = (TriangleShape) shape;"),
            desired: vec![
                m("scene.addShape(new SphereShape(c, this.input.readInt()));"),
                m("scene.addShape(new TriangleShape(c, c2, c3));"),
            ],
            control_deps: 0,
            needs_alias_expansion: false,
            paper_thin: 23,
            paper_trad: 52,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use thinslice_pta::PtaConfig;

    #[test]
    fn mtrt_compiles_and_tasks_resolve() {
        let b = benchmark();
        let a = b.analyze(PtaConfig::default());
        for task in casts() {
            let resolved = task.resolve(&b, &a);
            assert!(!resolved.seeds.is_empty(), "{}: no seeds", task.id);
        }
    }
}
