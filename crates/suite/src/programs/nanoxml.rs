//! The `nanoxml` benchmark: a small XML parser in MJ.
//!
//! Mirrors the dependence shape of the SIR nanoxml subject: parsed values
//! (names, attribute values, content strings) are stored into and retrieved
//! from `Vector`s of elements and attributes, often across two container
//! hops — the paper notes its injected bugs "often required tracing a value
//! as it is inserted and later retrieved from one or two Vectors" (§6.2).

use crate::spec::{Benchmark, Marker, Task, TaskKind};

/// MJ source of the benchmark.
pub const SOURCE: &str = r#"class XmlAttribute {
    String key;
    String value;
    XmlAttribute(String key, String value) {
        this.key = key;
        this.value = value;
    }
}

class XmlElement {
    String name;
    Vector attributes;
    Vector children;
    String content;
    boolean open;
    boolean selfClosing;
    XmlElement(String name) {
        this.name = name;
        this.attributes = new Vector();
        this.children = new Vector();
        this.content = "";
        this.open = true;
        this.selfClosing = false;
    }
    void addAttribute(String key, String value) {
        this.attributes.add(new XmlAttribute(key, value));
    }
    String getAttribute(String key) {
        int i = 0;
        while (i < this.attributes.size()) {
            XmlAttribute a = (XmlAttribute) this.attributes.get(i);
            if (a.key.equalsStr(key)) {
                return a.value;
            }
            i = i + 1;
        }
        return null;
    }
    void addChild(XmlElement child) {
        this.children.add(child);
    }
    XmlElement childAt(int index) {
        return (XmlElement) this.children.get(index);
    }
    int childCount() {
        return this.children.size();
    }
    void setContent(String content) {
        this.content = content;
    }
    String getContent() {
        return this.content;
    }
    void clearContent() {
        this.invalidate();
    }
    void invalidate() {
        this.content = null;
        this.open = false;
    }
    String getName() {
        return this.name;
    }
}

class XmlParser {
    InputStream input;
    String defaultNamespace;
    Vector errors;
    Vector seenIds;
    Vector seenNames;
    XmlParser(InputStream input) {
        this.input = input;
        this.defaultNamespace = "ns-default";
        this.errors = new Vector();
        this.seenIds = new Vector();
        this.seenNames = new Vector();
    }
    XmlElement parseDocument() {
        XmlElement root = new XmlElement("root");
        while (!this.input.eof()) {
            String line = this.input.readLine();
            XmlElement child = this.parseElement(line);
            root.addChild(child);
        }
        return root;
    }
    XmlElement parseElement(String line) {
        int nameEnd = line.indexOf(" ");
        String name = line.substring(1, nameEnd - 1);
        XmlElement elem = new XmlElement(name);
        String idValue = this.parseAttribute(line);
        this.seenIds.add(idValue);
        elem.addAttribute("id", idValue);
        this.seenNames.add(name);
        String text = line.substring(nameEnd, line.length());
        XmlElement inner = new XmlElement("inner");
        inner.setContent(text);
        elem.addChild(inner);
        elem.selfClosing = line.indexOf("/") > 0;
        return elem;
    }
    String parseAttribute(String line) {
        int eq = line.indexOf("=");
        String value = line.substring(eq + 2, line.length() - 1);
        return value;
    }
    String namespaceFor(XmlElement elem) {
        String explicit = elem.getAttribute("xmlns");
        if (explicit != null) {
            return explicit;
        }
        return this.defaultNamespace;
    }
}

class Main {
    static void main() {
        InputStream in = new InputStream("doc.xml");
        XmlParser parser = new XmlParser(in);
        XmlElement root = parser.parseDocument();
        Main.validateIds(root);
        Main.dumpNames(parser);
        Main.dumpContent(root);
        Main.checkSelfClosing(root);
        Main.checkNamespaces(parser, root);
        Hashtable registry = new Hashtable();
        registry.put("document", root);
        XmlElement cached = (XmlElement) registry.get("document");
        XmlElement first = Main.pickElement(cached);
        first.clearContent();
        XmlElement fetched = (XmlElement) registry.get("document");
        XmlElement again = Main.pickElement(fetched);
        String liveContent = again.getContent();
        if (liveContent == null) {
            throw new RuntimeException("content vanished");
        }
        print(liveContent);
    }
    static XmlElement pickElement(XmlElement root) {
        XmlElement found = null;
        int i = 0;
        while (i < root.childCount()) {
            XmlElement candidate = root.childAt(i);
            String marker = candidate.getAttribute("id");
            if (marker != null) {
                found = candidate;
            }
            i = i + 1;
        }
        return found;
    }
    static void validateIds(XmlElement root) {
        int i = 0;
        while (i < root.childCount()) {
            XmlElement c = root.childAt(i);
            String id = c.getAttribute("id");
            print("id: " + id);
            i = i + 1;
        }
    }
    static void dumpNames(XmlParser parser) {
        Vector names = parser.seenNames;
        int i = 0;
        while (i < names.size()) {
            String name = (String) names.get(i);
            print("name: " + name);
            i = i + 1;
        }
    }
    static void dumpContent(XmlElement root) {
        int i = 0;
        while (i < root.childCount()) {
            XmlElement c = root.childAt(i);
            int j = 0;
            while (j < c.childCount()) {
                XmlElement grandchild = c.childAt(j);
                print("content: " + grandchild.getContent());
                j = j + 1;
            }
            i = i + 1;
        }
    }
    static void checkSelfClosing(XmlElement root) {
        int i = 0;
        while (i < root.childCount()) {
            XmlElement c = root.childAt(i);
            if (c.selfClosing) {
                throw new RuntimeException("unexpected self-closing element");
            }
            i = i + 1;
        }
    }
    static void checkNamespaces(XmlParser parser, XmlElement root) {
        int i = 0;
        while (i < root.childCount()) {
            XmlElement c = root.childAt(i);
            String ns = parser.namespaceFor(c);
            print("ns: " + ns);
            i = i + 1;
        }
    }
}
"#;

/// The benchmark definition.
pub fn benchmark() -> Benchmark {
    Benchmark {
        name: "nanoxml",
        sources: vec![("nanoxml.mj", SOURCE)],
    }
}

/// The six injected-bug tasks (Table 2 rows nanoxml-1 … nanoxml-6).
pub fn bugs() -> Vec<Task> {
    let m = |snippet: &'static str| Marker {
        file: "nanoxml.mj",
        snippet,
    };
    vec![
        // Attribute value printed wrong; the bug is the substring offset in
        // parseAttribute, two container hops away from the print.
        Task {
            id: "nanoxml-1",
            benchmark: "nanoxml",
            kind: TaskKind::Bug,
            seed: m("print(\"id: \" + id);"),
            desired: vec![m("substring(eq + 2, line.length() - 1)")],
            control_deps: 0,
            needs_alias_expansion: false,
            paper_thin: 12,
            paper_trad: 32,
        },
        // Element name printed wrong; the bug is the off-by-one in
        // parseElement's name substring.
        Task {
            id: "nanoxml-2",
            benchmark: "nanoxml",
            kind: TaskKind::Bug,
            seed: m("print(\"name: \" + name);"),
            desired: vec![m("substring(1, nameEnd - 1)")],
            control_deps: 0,
            needs_alias_expansion: false,
            paper_thin: 25,
            paper_trad: 113,
        },
        // Grandchild content wrong — the value travels through two nested
        // Vectors before being printed.
        Task {
            id: "nanoxml-3",
            benchmark: "nanoxml",
            kind: TaskKind::Bug,
            seed: m("print(\"content: \" + grandchild.getContent());"),
            desired: vec![m("substring(nameEnd, line.length())")],
            control_deps: 0,
            needs_alias_expansion: false,
            paper_thin: 29,
            paper_trad: 123,
        },
        // Spurious self-closing exception; the bug is the flag computation,
        // one relevant control dependence (the throwing if).
        Task {
            id: "nanoxml-4",
            benchmark: "nanoxml",
            kind: TaskKind::Bug,
            seed: m("throw new RuntimeException(\"unexpected self-closing element\");"),
            desired: vec![m("selfClosing = line.indexOf(\"/\") > 0;")],
            control_deps: 1,
            needs_alias_expansion: false,
            paper_thin: 12,
            paper_trad: 33,
        },
        // The Figure-4 pattern: content cleared through one alias fetched
        // from the children Vector, read through another; finding the
        // `first.clearContent()` call requires explaining the aliasing.
        Task {
            id: "nanoxml-5",
            benchmark: "nanoxml",
            kind: TaskKind::Bug,
            seed: m("throw new RuntimeException(\"content vanished\");"),
            desired: vec![m("first.clearContent();")],
            control_deps: 1,
            needs_alias_expansion: true,
            paper_thin: 35,
            paper_trad: 156,
        },
        // Wrong namespace printed; the bug is the defaultNamespace
        // initialisation in the parser constructor.
        Task {
            id: "nanoxml-6",
            benchmark: "nanoxml",
            kind: TaskKind::Bug,
            seed: m("print(\"ns: \" + ns);"),
            desired: vec![m("this.defaultNamespace = \"ns-default\";")],
            control_deps: 0,
            needs_alias_expansion: false,
            paper_thin: 12,
            paper_trad: 52,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use thinslice_pta::PtaConfig;

    #[test]
    fn nanoxml_compiles_and_tasks_resolve() {
        let b = benchmark();
        let a = b.analyze(PtaConfig::default());
        for task in bugs() {
            let resolved = task.resolve(&b, &a);
            assert!(!resolved.seeds.is_empty(), "{}: no seeds", task.id);
            assert!(!resolved.desired.is_empty(), "{}: no desired", task.id);
        }
    }
}
