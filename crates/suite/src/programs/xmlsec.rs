//! The `xml-security` benchmark: a multi-stage digest pipeline in MJ.
//!
//! The paper reports that five of six xml-security bugs were *not*
//! sliceable: "the computeHash() equivalent is complex, spanning several
//! .class files, and the injected bugs were buried in the algorithm
//! internals … slicing from this assertion failure will inevitably bring in
//! most or all of the code that computes the hash function" (§6.2). This
//! program reproduces that shape: a digest computed through several
//! classes, checked against an expected value at the end. Only
//! xml-security-1 (a failure adjacent to its cause) appears in Table 2; the
//! unsliceable bugs are represented by [`unsliceable_bug_count`].

use crate::spec::{Benchmark, Marker, Task, TaskKind};

/// MJ source of the benchmark.
pub const SOURCE: &str = r#"class Chunk {
    int word;
    Chunk(int word) {
        this.word = word;
    }
}

class Canonicalizer {
    Vector normalize(InputStream input) {
        Vector chunks = new Vector();
        while (!input.eof()) {
            int raw = input.readInt();
            int canonical = raw % 65536;
            chunks.add(new Chunk(canonical));
        }
        return chunks;
    }
}

class DigestRound {
    int mix(int state, int word) {
        int a = state * 31 + word;
        int b = a % 65521;
        int c = b * 7 + 13;
        return c % 65521;
    }
    int finalize(int state, int length) {
        int folded = state + length * 59;
        return folded % 65521;
    }
}

class DigestEngine {
    DigestRound round;
    DigestEngine() {
        this.round = new DigestRound();
    }
    int computeDigest(Vector chunks) {
        int state = 1;
        int i = 0;
        while (i < chunks.size()) {
            Chunk chunk = (Chunk) chunks.get(i);
            state = this.round.mix(state, chunk.word);
            i = i + 1;
        }
        return this.round.finalize(state, chunks.size());
    }
}

class SignatureChecker {
    int expected;
    Vector log;
    SignatureChecker(int expected) {
        this.expected = expected;
        this.log = new Vector();
    }
    void check(int digest) {
        if (digest != this.expected) {
            this.log.add("mismatch");
            throw new RuntimeException("digest mismatch");
        }
        this.log.add("ok");
        print("signature ok");
    }
    int logSize() {
        return this.log.size();
    }
}

class Main {
    static void main() {
        InputStream in = new InputStream("document.xml");
        Canonicalizer canon = new Canonicalizer();
        Vector chunks = canon.normalize(in);
        DigestEngine engine = new DigestEngine();
        int digest = engine.computeDigest(chunks);
        InputStream sigIn = new InputStream("signature.bin");
        int expectedDigest = sigIn.readInt();
        SignatureChecker checker = new SignatureChecker(expectedDigest);
        checker.check(digest);
        print("checks: " + "" + checker.logSize());
    }
}
"#;

/// The benchmark definition.
pub fn benchmark() -> Benchmark {
    Benchmark {
        name: "xmlsec",
        sources: vec![("xmlsec.mj", SOURCE)],
    }
}

/// Bugs for which the paper found *no* kind of slicing useful: the injected
/// defect is buried inside the digest arithmetic, and any backward slice
/// from the mismatch contains essentially the whole pipeline.
pub fn unsliceable_bug_count() -> usize {
    5
}

/// The single sliceable task (Table 2 row xml-security-1).
pub fn bugs() -> Vec<Task> {
    let m = |snippet: &'static str| Marker {
        file: "xmlsec.mj",
        snippet,
    };
    vec![Task {
        id: "xml-security-1",
        benchmark: "xmlsec",
        kind: TaskKind::Bug,
        seed: m("throw new RuntimeException(\"digest mismatch\");"),
        desired: vec![m("int expectedDigest = sigIn.readInt();")],
        control_deps: 1,
        needs_alias_expansion: false,
        paper_thin: 2,
        paper_trad: 2,
    }]
}

#[cfg(test)]
mod tests {
    use super::*;

    use thinslice_pta::PtaConfig;

    #[test]
    fn xmlsec_compiles_and_task_resolves() {
        let b = benchmark();
        let a = b.analyze(PtaConfig::default());
        for task in bugs() {
            let resolved = task.resolve(&b, &a);
            assert!(!resolved.seeds.is_empty());
        }
    }

    #[test]
    fn digest_bugs_are_unsliceable_in_spirit() {
        // Slicing from the mismatch (after following its conditional) pulls
        // in essentially the whole digest pipeline: the property the paper
        // reports for the five unsliceable xml-security bugs.
        let b = benchmark();
        let a = b.analyze(PtaConfig::default());
        let src = SOURCE;
        let seed_line = crate::spec::line_with(src, "if (digest != this.expected)");
        let seeds = a.seed_at_line("xmlsec.mj", seed_line).unwrap();
        let slice = a.thin_slice(&seeds);
        // The mixing arithmetic is unavoidable in the slice.
        let mix_line = crate::spec::line_with(src, "int a = state * 31 + word;");
        let mix_stmts = a.stmts_at_line("xmlsec.mj", mix_line);
        assert!(
            mix_stmts.iter().any(|s| slice.contains(*s)),
            "the digest internals flow into the checked value"
        );
    }
}
