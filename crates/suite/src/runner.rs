//! Task execution: turns a [`Task`] into one row of Table 2 or Table 3.
//!
//! Follows the paper's §6.1 methodology:
//!
//! * breadth-first inspection from the seed over the chosen dependence
//!   relation, counting statements until the desired ones are found;
//! * the manually pre-determined relevant control dependences are exposed
//!   to *both* slicers: their conditionals join the seed set and their
//!   count is added to both totals;
//! * tasks marked [`Task::needs_alias_expansion`] (nanoxml-5) run "in a
//!   configuration that included statements explaining one level of
//!   indirect aliasing": if the plain slice misses the desired statements,
//!   the §4.1 aliasing explanations of the slice's heap-flow pairs are
//!   inspected afterwards.

use crate::spec::{Benchmark, Task};
use thinslice::{expand, Analysis, InspectTask, InspectionResult, SliceKind};
use thinslice_ir::StmtRef;

/// The measured numbers for one slicer on one task.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Measurement {
    /// Statements (source lines) inspected, including exposed control
    /// dependences and any aliasing-expansion statements.
    pub inspected: usize,
    /// Whether the desired statements were found at all.
    pub found: bool,
    /// Full slice size in source lines (the classical measure).
    pub full_slice: usize,
}

/// One complete table row: thin vs traditional, object-sensitive and not.
#[derive(Debug, Clone)]
pub struct TaskResult {
    /// Row id (e.g. `"nanoxml-3"`).
    pub id: &'static str,
    /// Thin slicing with the precise (object-sensitive) pointer analysis.
    pub thin: Measurement,
    /// Traditional data slicing with the precise pointer analysis.
    pub trad: Measurement,
    /// The paper's `#Control` column.
    pub control_deps: u32,
    /// Thin slicing without object-sensitive containers.
    pub thin_noobjsens: Measurement,
    /// Traditional slicing without object-sensitive containers.
    pub trad_noobjsens: Measurement,
    /// Paper-reported `#Thin`, for the comparison report.
    pub paper_thin: u32,
    /// Paper-reported `#Trad`.
    pub paper_trad: u32,
}

impl TaskResult {
    /// The `#Trad / #Thin` ratio (the paper's `Ratio` column).
    pub fn ratio(&self) -> f64 {
        if self.thin.inspected == 0 {
            return 1.0;
        }
        self.trad.inspected as f64 / self.thin.inspected as f64
    }
}

/// Runs one slicer on one resolved task, applying the control-dependence
/// and aliasing-expansion methodology.
pub fn measure(
    analysis: &Analysis,
    task: &Task,
    resolved: &InspectTask,
    kind: SliceKind,
) -> Measurement {
    // Expose the relevant control dependences (§4.2). For a *guarded
    // tough cast* the paper's user follows the control dependence and
    // slices from the conditional itself ("computing a thin slice for
    // line 12 [int op = n.op] to see what value op gets", §6.3) — the
    // invariant question is about the tag, not the casted object's flow.
    // For debugging tasks the conditionals *join* the failing seed.
    let mut seeds: Vec<StmtRef> = resolved.seeds.clone();
    let mut extra_inspected = 0usize;
    if task.control_deps > 0 {
        let mut conditionals = Vec::new();
        for s in resolved.seeds.clone() {
            for c in expand::exposed_control_deps(&analysis.sdg, s) {
                if !conditionals.contains(&c) {
                    conditionals.push(c);
                }
            }
        }
        if task.kind == crate::spec::TaskKind::ToughCast && !conditionals.is_empty() {
            // The cast line itself was read to get here.
            extra_inspected = 1;
            seeds = conditionals;
        } else {
            for c in conditionals {
                if !seeds.contains(&c) {
                    seeds.push(c);
                }
            }
        }
    }
    let widened = InspectTask {
        seeds,
        desired: resolved.desired.clone(),
    };
    let base: InspectionResult = analysis.inspect(&widened, kind);

    let mut inspected = base.inspected + task.control_deps as usize + extra_inspected;
    let mut found = base.found_all;
    let mut full_slice = base.full_slice_lines + task.control_deps as usize + extra_inspected;

    if !found && task.needs_alias_expansion {
        // One level of aliasing expansion: inspect the explanations of the
        // slice's heap-flow pairs until the desired statements appear.
        let slice = match kind {
            SliceKind::Thin => analysis.thin_slice(&widened.seeds),
            SliceKind::TraditionalData => analysis.traditional_slice(&widened.seeds),
            SliceKind::TraditionalFull => analysis.full_slice(&widened.seeds),
        };
        let desired_lines: Vec<(thinslice_ir::FileId, u32)> = widened
            .desired
            .iter()
            .flatten()
            .map(|&s| {
                let sp = analysis.program.instr(s).span;
                (sp.file, sp.line)
            })
            .collect();
        // The user asks the aliasing question at the heap-flow pair closest
        // to the seed first (its store was inspected earliest), and reads
        // both base-pointer explanations breadth-first, interleaved.
        let mut pairs = expand::heap_flow_pairs(&analysis.program, &analysis.sdg, &slice);
        let position_of = |s: StmtRef| {
            let sp = analysis.program.instr(s).span;
            let file_name = analysis.program.files[sp.file].name.clone();
            base.order
                .iter()
                .position(|(f, l)| *f == file_name && *l == sp.line)
                .unwrap_or(usize::MAX)
        };
        // The user starts with the suspicious producer: the store writing
        // the literal bad value observed at the seed (the paper's Figure 4
        // user asks about `close()` because it is what wrote `false`).
        let stores_literal = |s: StmtRef| -> bool {
            matches!(
                analysis.program.instr(s).kind,
                thinslice_ir::InstrKind::Store {
                    value: thinslice_ir::Operand::Const(_),
                    ..
                } | thinslice_ir::InstrKind::ArrayStore {
                    value: thinslice_ir::Operand::Const(_),
                    ..
                }
            )
        };
        pairs.sort_by_key(|(load, store)| {
            (
                !stores_literal(*store),
                position_of(*store).min(position_of(*load)),
            )
        });

        // Every explanation line counts as fresh inspection effort; the set
        // only dedups lines *within* the expansion phase.
        let mut seen_lines: std::collections::HashSet<(thinslice_ir::FileId, u32)> =
            std::collections::HashSet::new();
        // Per pair, interleave the store-side and load-side explanations
        // breadth-first; across pairs, explore round-robin — the user keeps
        // all open aliasing questions at the same depth.
        let streams: Vec<Vec<StmtRef>> = pairs
            .into_iter()
            .filter_map(|(load, store)| analysis.explain_aliasing(load, store).ok())
            .map(|explanation| {
                let (lf, sf) = (&explanation.load_base_flow, &explanation.store_base_flow);
                let mut interleaved = Vec::with_capacity(lf.len() + sf.len());
                for i in 0..lf.len().max(sf.len()) {
                    if let Some(s) = sf.get(i) {
                        interleaved.push(*s);
                    }
                    if let Some(s) = lf.get(i) {
                        interleaved.push(*s);
                    }
                }
                interleaved
            })
            .collect();
        let mut extra = 0usize;
        'outer: for stream in &streams {
            for &s in stream {
                let sp = analysis.program.instr(s).span;
                if sp.is_synthetic() || !seen_lines.insert((sp.file, sp.line)) {
                    continue;
                }
                extra += 1;
                if desired_lines.contains(&(sp.file, sp.line)) {
                    found = true;
                    break 'outer;
                }
            }
        }
        inspected += extra;
        full_slice += extra;
    }

    Measurement {
        inspected,
        found,
        full_slice,
    }
}

/// Runs a full task: thin + traditional, with and without object-sensitive
/// containers.
pub fn run_task(
    benchmark: &Benchmark,
    task: &Task,
    precise: &Analysis,
    noobjsens: &Analysis,
) -> TaskResult {
    let resolved = task.resolve(benchmark, precise);
    let resolved_no = task.resolve(benchmark, noobjsens);
    TaskResult {
        id: task.id,
        thin: measure(precise, task, &resolved, SliceKind::Thin),
        trad: measure(precise, task, &resolved, SliceKind::TraditionalData),
        control_deps: task.control_deps,
        thin_noobjsens: measure(noobjsens, task, &resolved_no, SliceKind::Thin),
        trad_noobjsens: measure(noobjsens, task, &resolved_no, SliceKind::TraditionalData),
        paper_thin: task.paper_thin,
        paper_trad: task.paper_trad,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::programs::{jtopas, nanoxml};
    use thinslice_pta::PtaConfig;

    #[test]
    fn jtopas_rows_are_trivial_for_both_slicers() {
        let b = jtopas::benchmark();
        let precise = b.analyze(PtaConfig::default());
        let noobjsens = b.analyze(PtaConfig::without_object_sensitivity());
        for task in jtopas::bugs() {
            let row = run_task(&b, &task, &precise, &noobjsens);
            assert!(row.thin.found, "{}: thin must find the bug", row.id);
            assert!(row.trad.found, "{}: trad must find the bug", row.id);
            assert!(
                row.thin.inspected <= 16,
                "{}: thin={}",
                row.id,
                row.thin.inspected
            );
            assert!(row.thin.inspected <= row.trad.inspected);
        }
    }

    #[test]
    fn nanoxml_thin_beats_traditional() {
        let b = nanoxml::benchmark();
        let precise = b.analyze(PtaConfig::default());
        let noobjsens = b.analyze(PtaConfig::without_object_sensitivity());
        let mut total_thin = 0;
        let mut total_trad = 0;
        for task in nanoxml::bugs() {
            let row = run_task(&b, &task, &precise, &noobjsens);
            assert!(row.thin.found, "{}: thin must find the bug", row.id);
            assert!(row.trad.found, "{}: trad must find the bug", row.id);
            // nanoxml-5's aliasing expansion can cost a line or two more
            // than the traditional BFS at this miniature scale; every other
            // row must not regress at all.
            let slack = if task.needs_alias_expansion { 2 } else { 0 };
            assert!(
                row.thin.inspected <= row.trad.inspected + slack,
                "{}: thin={} trad={}",
                row.id,
                row.thin.inspected,
                row.trad.inspected
            );
            total_thin += row.thin.inspected;
            total_trad += row.trad.inspected;
        }
        assert!(
            total_trad > total_thin,
            "aggregate: thin={total_thin} trad={total_trad}"
        );
    }
}
