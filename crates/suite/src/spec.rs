//! Benchmark, bug and tough-cast specifications.
//!
//! Seeds and desired statements are anchored by *source snippets* rather
//! than line numbers, so the MJ programs can be edited without silently
//! corrupting the experiment definitions.

use thinslice::{Analysis, AnalysisSession, InspectTask, RunCtx};

/// A benchmark program: a name and its MJ sources.
#[derive(Debug, Clone)]
pub struct Benchmark {
    /// Short name (matches the paper's benchmark names).
    pub name: &'static str,
    /// `(file name, source)` pairs.
    pub sources: Vec<(&'static str, &'static str)>,
}

impl Benchmark {
    /// Compiles and analyses the benchmark with the given configuration.
    ///
    /// # Panics
    ///
    /// Panics if the benchmark sources fail to compile — they are fixtures
    /// and must always build.
    pub fn analyze(&self, config: thinslice_pta::PtaConfig) -> Analysis {
        Analysis::with_config(&self.sources, config)
            .unwrap_or_else(|e| panic!("benchmark {} failed to compile: {e}", self.name))
    }

    /// Opens an [`AnalysisSession`] on the benchmark — the lazy query
    /// entrypoint the experiment and equivalence tests drive.
    ///
    /// # Panics
    ///
    /// Panics if the benchmark sources fail to compile — they are fixtures
    /// and must always build.
    pub fn session(&self, config: thinslice_pta::PtaConfig, ctx: RunCtx) -> AnalysisSession {
        AnalysisSession::with_ctx(&self.sources, config, ctx)
            .unwrap_or_else(|e| panic!("benchmark {} failed to compile: {e}", self.name))
    }
}

/// A point in a benchmark source, identified by file and a unique snippet
/// of the line's text.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Marker {
    /// File name within the benchmark.
    pub file: &'static str,
    /// Substring uniquely identifying the line.
    pub snippet: &'static str,
}

/// What kind of experiment a task belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TaskKind {
    /// A debugging task (Table 2): seed = failure point, desired = the
    /// injected bug.
    Bug,
    /// A program-understanding task (Table 3): seed = a tough cast,
    /// desired = the statements establishing the safety invariant.
    ToughCast,
}

/// One experimental task (a row of Table 2 or Table 3).
#[derive(Debug, Clone)]
pub struct Task {
    /// Row id, e.g. `"nanoxml-1"`.
    pub id: &'static str,
    /// The benchmark the task runs on.
    pub benchmark: &'static str,
    /// Bug or tough cast.
    pub kind: TaskKind,
    /// Where the slice starts.
    pub seed: Marker,
    /// What must be discovered; each entry is one desired statement.
    pub desired: Vec<Marker>,
    /// The manually pre-determined relevant control dependences (the
    /// paper's `#Control` column; added to both slicers' counts).
    pub control_deps: u32,
    /// Whether completing the task requires one level of aliasing
    /// expansion (paper §4.1; nanoxml-5 in Table 2).
    pub needs_alias_expansion: bool,
    /// The paper's reported `#Thin` (for EXPERIMENTS.md comparison).
    pub paper_thin: u32,
    /// The paper's reported `#Trad` column.
    pub paper_trad: u32,
}

/// Finds the 1-based line containing `snippet` in `src`.
///
/// # Panics
///
/// Panics if the snippet is missing or ambiguous — specs must be exact.
pub fn line_with(src: &str, snippet: &str) -> u32 {
    let matches: Vec<u32> = src
        .lines()
        .enumerate()
        .filter(|(_, l)| l.contains(snippet))
        .map(|(i, _)| i as u32 + 1)
        .collect();
    match matches.as_slice() {
        [one] => *one,
        [] => panic!("snippet {snippet:?} not found"),
        many => panic!("snippet {snippet:?} ambiguous: lines {many:?}"),
    }
}

impl Task {
    /// Resolves the task to concrete IR statements against an analysis of
    /// its benchmark.
    ///
    /// # Panics
    ///
    /// Panics if a marker resolves to a line with no reachable statement —
    /// that indicates a broken spec.
    pub fn resolve(&self, benchmark: &Benchmark, analysis: &Analysis) -> InspectTask {
        let line_of_marker = |m: &Marker| -> (&'static str, u32) {
            let src = benchmark
                .sources
                .iter()
                .find(|(f, _)| *f == m.file)
                .unwrap_or_else(|| panic!("{}: no file {}", self.id, m.file));
            (m.file, line_with(src.1, m.snippet))
        };
        let (seed_file, seed_line) = line_of_marker(&self.seed);
        let seeds = analysis
            .seed_at_line(seed_file, seed_line)
            .unwrap_or_else(|| {
                panic!("{}: seed line {seed_file}:{seed_line} unreachable", self.id)
            });
        let desired = self
            .desired
            .iter()
            .map(|m| {
                let (f, l) = line_of_marker(m);
                let stmts = analysis.stmts_at_line(f, l);
                assert!(
                    !stmts.is_empty(),
                    "{}: desired line {f}:{l} has no statements",
                    self.id
                );
                stmts
            })
            .collect();
        InspectTask { seeds, desired }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_with_finds_unique_lines() {
        let src = "a\nbb\nccc\n";
        assert_eq!(line_with(src, "bb"), 2);
        assert_eq!(line_with(src, "ccc"), 3);
    }

    #[test]
    #[should_panic(expected = "not found")]
    fn line_with_missing_panics() {
        line_with("a\nb\n", "zzz");
    }

    #[test]
    #[should_panic(expected = "ambiguous")]
    fn line_with_ambiguous_panics() {
        line_with("xx\nxx\n", "xx");
    }
}
