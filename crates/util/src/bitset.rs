//! A dense, growable bitset keyed by typed indices.

use crate::Idx;
use std::fmt;
use std::marker::PhantomData;

const WORD_BITS: usize = 64;

/// A dense bitset over a typed index domain.
///
/// Used for points-to sets, reachability sets and slice membership. The set
/// grows on demand; all operations are O(words).
///
/// # Examples
///
/// ```
/// use thinslice_util::BitSet;
///
/// let mut s: BitSet<usize> = BitSet::new();
/// assert!(s.insert(3));
/// assert!(!s.insert(3));
/// assert!(s.contains(3));
/// assert_eq!(s.iter().collect::<Vec<_>>(), vec![3]);
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct BitSet<I: Idx = usize> {
    words: Vec<u64>,
    _marker: PhantomData<fn(I)>,
}

impl<I: Idx> Default for BitSet<I> {
    fn default() -> Self {
        Self::new()
    }
}

impl<I: Idx> BitSet<I> {
    /// Creates an empty set.
    pub fn new() -> Self {
        Self {
            words: Vec::new(),
            _marker: PhantomData,
        }
    }

    /// Creates an empty set sized for a domain of `n` elements.
    pub fn with_domain_size(n: usize) -> Self {
        Self {
            words: vec![0; n.div_ceil(WORD_BITS)],
            _marker: PhantomData,
        }
    }

    fn ensure(&mut self, word: usize) {
        if word >= self.words.len() {
            self.words.resize(word + 1, 0);
        }
    }

    /// Inserts `index`; returns `true` if it was newly inserted.
    pub fn insert(&mut self, index: I) -> bool {
        let i = index.index();
        let (w, b) = (i / WORD_BITS, i % WORD_BITS);
        self.ensure(w);
        let mask = 1u64 << b;
        let newly = self.words[w] & mask == 0;
        self.words[w] |= mask;
        newly
    }

    /// Removes `index`; returns `true` if it was present.
    pub fn remove(&mut self, index: I) -> bool {
        let i = index.index();
        let (w, b) = (i / WORD_BITS, i % WORD_BITS);
        if w >= self.words.len() {
            return false;
        }
        let mask = 1u64 << b;
        let present = self.words[w] & mask != 0;
        self.words[w] &= !mask;
        present
    }

    /// Whether `index` is in the set.
    pub fn contains(&self, index: I) -> bool {
        let i = index.index();
        let (w, b) = (i / WORD_BITS, i % WORD_BITS);
        w < self.words.len() && self.words[w] & (1 << b) != 0
    }

    /// Number of elements in the set.
    pub fn len(&self) -> usize {
        self.count_ones()
    }

    /// Number of set bits, summed word-at-a-time with hardware popcount.
    ///
    /// This is the bulk cardinality fast path the wavefront slicer uses
    /// between levels: no per-element iteration, just one `count_ones` per
    /// 64-element word.
    #[inline]
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Removes all elements, keeping the allocation.
    pub fn clear(&mut self) {
        self.words.iter_mut().for_each(|w| *w = 0);
    }

    /// Adds all elements of `other`; returns `true` if anything changed.
    pub fn union_with(&mut self, other: &Self) -> bool {
        if self.words.len() < other.words.len() {
            self.words.resize(other.words.len(), 0);
        }
        let mut changed = false;
        for (a, &b) in self.words.iter_mut().zip(&other.words) {
            let new = *a | b;
            changed |= new != *a;
            *a = new;
        }
        changed
    }

    /// Adds all elements of `other`, recording every *newly added* element
    /// into `delta`; returns `true` if anything changed.
    ///
    /// This is the primitive behind difference propagation in the points-to
    /// solver: the worklist carries only the bits that actually changed.
    pub fn union_with_delta(&mut self, other: &Self, delta: &mut Self) -> bool {
        if self.words.len() < other.words.len() {
            self.words.resize(other.words.len(), 0);
        }
        let mut changed = false;
        for (i, (a, &b)) in self.words.iter_mut().zip(&other.words).enumerate() {
            let fresh = b & !*a;
            if fresh != 0 {
                changed = true;
                *a |= b;
                delta.ensure(i);
                delta.words[i] |= fresh;
            }
        }
        changed
    }

    /// Keeps only elements also in `other`.
    pub fn intersect_with(&mut self, other: &Self) {
        for (i, a) in self.words.iter_mut().enumerate() {
            *a &= other.words.get(i).copied().unwrap_or(0);
        }
    }

    /// Removes all elements of `other` from `self`.
    pub fn subtract(&mut self, other: &Self) {
        for (i, a) in self.words.iter_mut().enumerate() {
            *a &= !other.words.get(i).copied().unwrap_or(0);
        }
    }

    /// Whether the two sets share any element.
    pub fn intersects(&self, other: &Self) -> bool {
        self.words
            .iter()
            .zip(&other.words)
            .any(|(&a, &b)| a & b != 0)
    }

    /// Whether every element of `self` is in `other`.
    pub fn is_subset(&self, other: &Self) -> bool {
        self.words
            .iter()
            .enumerate()
            .all(|(i, &a)| a & !other.words.get(i).copied().unwrap_or(0) == 0)
    }

    /// Drains the set into `out` in increasing index order, clearing every
    /// word it visits. One pass over the words: the wavefront slicer uses
    /// this to turn a level's discovery bits into a node list and reset the
    /// set for the next level without a second clearing pass.
    pub fn drain_into(&mut self, out: &mut Vec<I>) {
        for (wi, w) in self.words.iter_mut().enumerate() {
            let mut bits = *w;
            *w = 0;
            while bits != 0 {
                let b = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                out.push(I::from_usize(wi * WORD_BITS + b));
            }
        }
    }

    /// The raw 64-bit words backing the set, for exact-fidelity
    /// serialization. Word `w` holds elements `w*64 .. w*64+63`; trailing
    /// zero words are preserved (they participate in `Eq`/`Hash`).
    pub fn as_words(&self) -> &[u64] {
        &self.words
    }

    /// Rebuilds a set from raw words previously taken via [`Self::as_words`].
    pub fn from_words(words: Vec<u64>) -> Self {
        Self {
            words,
            _marker: PhantomData,
        }
    }

    /// Iterates over the elements in increasing index order.
    pub fn iter(&self) -> BitSetIter<'_, I> {
        BitSetIter {
            words: &self.words,
            word_idx: 0,
            current: self.words.first().copied().unwrap_or(0),
            _marker: PhantomData,
        }
    }
}

impl<I: Idx> fmt::Debug for BitSet<I> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set()
            .entries(self.iter().map(|i| i.index()))
            .finish()
    }
}

impl<I: Idx> FromIterator<I> for BitSet<I> {
    fn from_iter<It: IntoIterator<Item = I>>(iter: It) -> Self {
        let mut s = Self::new();
        for i in iter {
            s.insert(i);
        }
        s
    }
}

impl<I: Idx> Extend<I> for BitSet<I> {
    fn extend<It: IntoIterator<Item = I>>(&mut self, iter: It) {
        for i in iter {
            self.insert(i);
        }
    }
}

/// Iterator over [`BitSet`] elements, produced by [`BitSet::iter`].
pub struct BitSetIter<'a, I: Idx> {
    words: &'a [u64],
    word_idx: usize,
    current: u64,
    _marker: PhantomData<fn(I)>,
}

impl<I: Idx> Iterator for BitSetIter<'_, I> {
    type Item = I;

    fn next(&mut self) -> Option<I> {
        loop {
            if self.current != 0 {
                let bit = self.current.trailing_zeros() as usize;
                self.current &= self.current - 1;
                return Some(I::from_usize(self.word_idx * WORD_BITS + bit));
            }
            self.word_idx += 1;
            if self.word_idx >= self.words.len() {
                return None;
            }
            self.current = self.words[self.word_idx];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SmallRng;
    use std::collections::BTreeSet;

    #[test]
    fn insert_contains_remove() {
        let mut s: BitSet = BitSet::new();
        assert!(s.insert(100));
        assert!(s.contains(100));
        assert!(!s.contains(99));
        assert!(s.remove(100));
        assert!(!s.remove(100));
        assert!(s.is_empty());
    }

    #[test]
    fn union_reports_change() {
        let mut a: BitSet = [1usize, 2].into_iter().collect();
        let b: BitSet = [2usize, 3].into_iter().collect();
        assert!(a.union_with(&b));
        assert!(!a.union_with(&b));
        assert_eq!(a.len(), 3);
    }

    #[test]
    fn intersect_and_subtract() {
        let mut a: BitSet = [1usize, 2, 3, 64, 65].into_iter().collect();
        let b: BitSet = [2usize, 64].into_iter().collect();
        let mut c = a.clone();
        c.intersect_with(&b);
        assert_eq!(c.iter().collect::<Vec<_>>(), vec![2, 64]);
        a.subtract(&b);
        assert_eq!(a.iter().collect::<Vec<_>>(), vec![1, 3, 65]);
    }

    #[test]
    fn intersects_and_subset() {
        let a: BitSet = [1usize, 70].into_iter().collect();
        let b: BitSet = [70usize].into_iter().collect();
        assert!(a.intersects(&b));
        assert!(b.is_subset(&a));
        assert!(!a.is_subset(&b));
        let empty: BitSet = BitSet::new();
        assert!(!a.intersects(&empty));
        assert!(empty.is_subset(&a));
    }

    #[test]
    fn iter_crosses_word_boundaries() {
        let elems = [0usize, 63, 64, 127, 128, 500];
        let s: BitSet = elems.into_iter().collect();
        assert_eq!(s.iter().collect::<Vec<_>>(), elems.to_vec());
    }

    #[test]
    fn count_ones_agrees_with_iteration_across_word_boundaries() {
        let elems = [0usize, 1, 62, 63, 64, 65, 126, 127, 128, 191, 192, 1000];
        let s: BitSet = elems.into_iter().collect();
        assert_eq!(s.count_ones(), elems.len());
        assert_eq!(s.count_ones(), s.iter().count());
        assert_eq!(BitSet::<usize>::new().count_ones(), 0);
    }

    #[test]
    fn bulk_ops_handle_mismatched_domains() {
        // `a` spans one word, `b` grew far past it: union must grow `a`,
        // subtract/intersect must not index out of bounds in either
        // direction.
        let mut a: BitSet = [3usize, 63].into_iter().collect();
        let b: BitSet = [63usize, 64, 500].into_iter().collect();
        assert!(a.union_with(&b));
        assert_eq!(a.iter().collect::<Vec<_>>(), vec![3, 63, 64, 500]);

        let mut wide: BitSet = [0usize, 64, 500].into_iter().collect();
        let narrow: BitSet = [0usize].into_iter().collect();
        wide.subtract(&narrow);
        assert_eq!(wide.iter().collect::<Vec<_>>(), vec![64, 500]);
        let mut shrink = narrow.clone();
        shrink.subtract(&wide);
        assert_eq!(shrink.iter().collect::<Vec<_>>(), vec![0]);
        shrink.intersect_with(&wide);
        assert!(shrink.is_empty());
    }

    #[test]
    fn domain_growth_preserves_existing_bits() {
        let mut s: BitSet = BitSet::with_domain_size(64);
        assert!(s.insert(63));
        // Inserting past the sized domain grows the word array.
        assert!(s.insert(64));
        assert!(s.insert(4096));
        assert!(s.contains(63) && s.contains(64) && s.contains(4096));
        assert_eq!(s.count_ones(), 3);
        s.clear();
        assert!(s.is_empty());
        assert!(s.insert(4096), "clear keeps the grown allocation usable");
    }

    #[test]
    fn drain_into_empties_in_order() {
        let elems = [0usize, 63, 64, 127, 128, 300];
        let mut s: BitSet = elems.into_iter().collect();
        let mut out = Vec::new();
        s.drain_into(&mut out);
        assert_eq!(out, elems.to_vec());
        assert!(s.is_empty());
        // Draining an already-empty set appends nothing.
        s.drain_into(&mut out);
        assert_eq!(out.len(), elems.len());
    }

    #[test]
    fn matches_btreeset_semantics() {
        // Deterministic randomized differential test against BTreeSet.
        for seed in 0..24u64 {
            let mut rng = SmallRng::new(seed);
            let mut bs: BitSet = BitSet::new();
            let mut reference = BTreeSet::new();
            for _ in 0..200 {
                let v = rng.range_usize(0, 300);
                if rng.bool() {
                    assert_eq!(
                        bs.insert(v),
                        reference.insert(v),
                        "insert {v} (seed {seed})"
                    );
                } else {
                    assert_eq!(
                        bs.remove(v),
                        reference.remove(&v),
                        "remove {v} (seed {seed})"
                    );
                }
            }
            assert_eq!(bs.len(), reference.len());
            assert_eq!(
                bs.iter().collect::<Vec<_>>(),
                reference.into_iter().collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn union_is_set_union() {
        for seed in 0..24u64 {
            let mut rng = SmallRng::new(seed ^ 0xabcd);
            let a: BTreeSet<usize> = (0..rng.range_usize(0, 50))
                .map(|_| rng.range_usize(0, 200))
                .collect();
            let b: BTreeSet<usize> = (0..rng.range_usize(0, 50))
                .map(|_| rng.range_usize(0, 200))
                .collect();
            let mut x: BitSet = a.iter().copied().collect();
            let y: BitSet = b.iter().copied().collect();
            x.union_with(&y);
            let expect: Vec<_> = a.union(&b).copied().collect();
            assert_eq!(x.iter().collect::<Vec<_>>(), expect, "seed {seed}");
        }
    }

    #[test]
    fn union_with_delta_records_exactly_the_new_bits() {
        for seed in 0..24u64 {
            let mut rng = SmallRng::new(seed ^ 0x5eed);
            let a: BTreeSet<usize> = (0..rng.range_usize(0, 60))
                .map(|_| rng.range_usize(0, 300))
                .collect();
            let b: BTreeSet<usize> = (0..rng.range_usize(0, 60))
                .map(|_| rng.range_usize(0, 300))
                .collect();
            let mut x: BitSet = a.iter().copied().collect();
            let y: BitSet = b.iter().copied().collect();
            let mut delta: BitSet = BitSet::new();
            let changed = x.union_with_delta(&y, &mut delta);
            let expect_delta: Vec<_> = b.difference(&a).copied().collect();
            assert_eq!(
                delta.iter().collect::<Vec<_>>(),
                expect_delta,
                "seed {seed}"
            );
            assert_eq!(changed, !expect_delta.is_empty());
            let expect_union: Vec<_> = a.union(&b).copied().collect();
            assert_eq!(x.iter().collect::<Vec<_>>(), expect_union);
            // Accumulation: a second union with the same set adds nothing.
            let mut delta2: BitSet = BitSet::new();
            assert!(!x.union_with_delta(&y, &mut delta2));
            assert!(delta2.is_empty());
        }
    }
}
