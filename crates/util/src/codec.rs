//! Hand-rolled binary codec for snapshot files.
//!
//! Snapshots persist the frozen analysis artifacts across processes, so the
//! format favors three properties over generality:
//!
//! * **Self-describing framing** — a magic tag, a format version, a snapshot
//!   key (the program content hash), and a named section table, so a reader
//!   can reject foreign or stale files before touching any payload.
//! * **Corruption detection** — a trailing [xxHash64]-style checksum over
//!   everything before it. Snapshot loads must *never* surface an error to
//!   the query path; a checksum mismatch simply means "cold build".
//! * **Compactness** — varint framing ([`ByteWriter::vu64`]) for the id-heavy
//!   payloads (dense `u32` indices compress to 1–2 bytes each).
//!
//! All multi-byte fixed-width values are little-endian. No external crates
//! are involved; the whole format is defined by this module.
//!
//! [xxHash64]: https://xxhash.com
//!
//! # Examples
//!
//! ```
//! use thinslice_util::codec::{ByteReader, ByteWriter, SnapshotReader, SnapshotWriter};
//!
//! let mut w = SnapshotWriter::new(*b"TDEM", 1, "cafe0123");
//! let mut sec = ByteWriter::new();
//! sec.vu64(42);
//! w.section("answers", sec.into_bytes());
//! let bytes = w.finish();
//!
//! let r = SnapshotReader::open(&bytes, *b"TDEM", 1).unwrap();
//! assert_eq!(r.key(), "cafe0123");
//! let mut sec = ByteReader::new(r.section("answers").unwrap());
//! assert_eq!(sec.vu64().unwrap(), 42);
//! ```

use std::fmt;

/// Ways a snapshot file can fail to decode.
///
/// Every variant means the same thing to callers: discard the snapshot and
/// rebuild from sources. The distinctions exist for logging and tests.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// The input ended before a complete value could be read.
    Truncated,
    /// The file does not start with the expected magic tag.
    BadMagic,
    /// The file's format version differs from what this build writes.
    Version {
        /// Version found in the file.
        found: u32,
        /// Version this build expects.
        expected: u32,
    },
    /// The trailing checksum does not match the file contents.
    Checksum,
    /// A structurally invalid value (bad tag, out-of-range index, …).
    Malformed(&'static str),
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Truncated => write!(f, "truncated input"),
            CodecError::BadMagic => write!(f, "bad magic"),
            CodecError::Version { found, expected } => {
                write!(f, "format version {found}, expected {expected}")
            }
            CodecError::Checksum => write!(f, "checksum mismatch"),
            CodecError::Malformed(what) => write!(f, "malformed {what}"),
        }
    }
}

impl std::error::Error for CodecError {}

/// Append-only byte buffer with varint and length-prefixed primitives.
#[derive(Debug, Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// An empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Consumes the writer, returning the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Writes one raw byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Writes a fixed-width little-endian `u64` (used for hashes, where
    /// varint framing would save nothing).
    pub fn u64_le(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes `v` as an LEB128-style varint (7 bits per byte, high bit is
    /// the continuation flag).
    pub fn vu64(&mut self, mut v: u64) {
        loop {
            let byte = (v & 0x7f) as u8;
            v >>= 7;
            if v == 0 {
                self.buf.push(byte);
                return;
            }
            self.buf.push(byte | 0x80);
        }
    }

    /// Writes a `usize` as a varint.
    pub fn vusize(&mut self, v: usize) {
        self.vu64(v as u64);
    }

    /// Writes a signed value zigzag-mapped onto a varint, so small
    /// magnitudes of either sign stay short.
    pub fn vi64(&mut self, v: i64) {
        self.vu64(((v << 1) ^ (v >> 63)) as u64);
    }

    /// Writes a length-prefixed byte string.
    pub fn bytes(&mut self, v: &[u8]) {
        self.vusize(v.len());
        self.buf.extend_from_slice(v);
    }

    /// Writes a length-prefixed UTF-8 string.
    pub fn str(&mut self, v: &str) {
        self.bytes(v.as_bytes());
    }

    /// Writes a `bool` as one byte.
    pub fn bool(&mut self, v: bool) {
        self.u8(v as u8);
    }

    /// Writes a dense `u32` slice as a varint length followed by raw
    /// little-endian words. Bulk form of repeated [`ByteWriter::vu64`]
    /// for the CSR-style index arrays warm starts decode by the tens of
    /// thousands: fixed width costs a little size but decodes with one
    /// bounds check per array instead of one branchy varint per element.
    pub fn u32s(&mut self, v: &[u32]) {
        self.vusize(v.len());
        self.buf.reserve(4 * v.len());
        for &x in v {
            self.buf.extend_from_slice(&x.to_le_bytes());
        }
    }

    /// Writes a dense `u64` slice as a varint length followed by raw
    /// little-endian words (bulk form of repeated [`ByteWriter::u64_le`],
    /// used for bitset word arrays).
    pub fn u64s_le(&mut self, v: &[u64]) {
        self.vusize(v.len());
        self.buf.reserve(8 * v.len());
        for &x in v {
            self.buf.extend_from_slice(&x.to_le_bytes());
        }
    }

    /// Appends raw bytes with no length prefix; the reader must know the
    /// count from context (see [`ByteReader::raw`]).
    pub fn raw(&mut self, v: &[u8]) {
        self.buf.extend_from_slice(v);
    }
}

/// Cursor over an encoded byte slice, mirroring [`ByteWriter`].
#[derive(Debug, Clone)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// A reader positioned at the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Whether the reader has consumed every byte.
    pub fn is_at_end(&self) -> bool {
        self.pos == self.buf.len()
    }

    /// Reads one raw byte.
    #[inline]
    pub fn u8(&mut self) -> Result<u8, CodecError> {
        let b = *self.buf.get(self.pos).ok_or(CodecError::Truncated)?;
        self.pos += 1;
        Ok(b)
    }

    /// Reads a fixed-width little-endian `u64`.
    pub fn u64_le(&mut self) -> Result<u64, CodecError> {
        let end = self.pos.checked_add(8).ok_or(CodecError::Truncated)?;
        let bytes = self
            .buf
            .get(self.pos..end)
            .ok_or(CodecError::Truncated)?
            .try_into()
            .expect("8-byte slice");
        self.pos = end;
        Ok(u64::from_le_bytes(bytes))
    }

    /// Reads a varint `u64`.
    #[inline]
    pub fn vu64(&mut self) -> Result<u64, CodecError> {
        // Fast path: most values in practice are dense ids below 128,
        // which the writer emitted as a single continuation-free byte.
        if let Some(&b) = self.buf.get(self.pos) {
            if b & 0x80 == 0 {
                self.pos += 1;
                return Ok(u64::from(b));
            }
        }
        self.vu64_slow()
    }

    fn vu64_slow(&mut self) -> Result<u64, CodecError> {
        let mut v = 0u64;
        for shift in (0..64).step_by(7) {
            let byte = self.u8()?;
            v |= u64::from(byte & 0x7f) << shift;
            if byte & 0x80 == 0 {
                return Ok(v);
            }
        }
        Err(CodecError::Malformed("varint"))
    }

    /// Reads a varint `usize`, rejecting values beyond the address space.
    #[inline]
    pub fn vusize(&mut self) -> Result<usize, CodecError> {
        usize::try_from(self.vu64()?).map_err(|_| CodecError::Malformed("usize"))
    }

    /// Reads a zigzag-encoded `i64`.
    pub fn vi64(&mut self) -> Result<i64, CodecError> {
        let v = self.vu64()?;
        Ok(((v >> 1) as i64) ^ -((v & 1) as i64))
    }

    /// Reads a length-prefixed byte string.
    pub fn bytes(&mut self) -> Result<&'a [u8], CodecError> {
        let len = self.vusize()?;
        let end = self.pos.checked_add(len).ok_or(CodecError::Truncated)?;
        let out = self.buf.get(self.pos..end).ok_or(CodecError::Truncated)?;
        self.pos = end;
        Ok(out)
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<&'a str, CodecError> {
        std::str::from_utf8(self.bytes()?).map_err(|_| CodecError::Malformed("utf-8 string"))
    }

    /// Reads a `bool`, rejecting anything but 0 or 1.
    pub fn bool(&mut self) -> Result<bool, CodecError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(CodecError::Malformed("bool")),
        }
    }

    /// Borrows the raw bytes of a fixed-width array: `count` elements of
    /// `width` bytes each, bounds-checked once.
    fn fixed(&mut self, count: usize, width: usize) -> Result<&'a [u8], CodecError> {
        let len = count.checked_mul(width).ok_or(CodecError::Truncated)?;
        let end = self.pos.checked_add(len).ok_or(CodecError::Truncated)?;
        let raw = self.buf.get(self.pos..end).ok_or(CodecError::Truncated)?;
        self.pos = end;
        Ok(raw)
    }

    /// Reads a slice written by [`ByteWriter::u32s`].
    pub fn u32s(&mut self) -> Result<Vec<u32>, CodecError> {
        let n = self.vusize()?;
        let raw = self.fixed(n, 4)?;
        Ok(raw
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes(c.try_into().expect("4-byte chunk")))
            .collect())
    }

    /// Borrows `count` raw bytes written by [`ByteWriter::raw`]; the
    /// caller supplies the count from context.
    pub fn raw(&mut self, count: usize) -> Result<&'a [u8], CodecError> {
        self.fixed(count, 1)
    }

    /// Reads a slice written by [`ByteWriter::u64s_le`].
    pub fn u64s_le(&mut self) -> Result<Vec<u64>, CodecError> {
        let n = self.vusize()?;
        let raw = self.fixed(n, 8)?;
        Ok(raw
            .chunks_exact(8)
            .map(|c| u64::from_le_bytes(c.try_into().expect("8-byte chunk")))
            .collect())
    }
}

const PRIME64_1: u64 = 0x9E37_79B1_85EB_CA87;
const PRIME64_2: u64 = 0xC2B2_AE3D_27D4_EB4F;
const PRIME64_3: u64 = 0x1656_67B1_9E37_79F9;
const PRIME64_4: u64 = 0x85EB_CA77_C2B2_AE63;
const PRIME64_5: u64 = 0x27D4_EB2F_1656_67C5;

#[inline]
fn xxh_round(mut acc: u64, lane: u64) -> u64 {
    acc = acc.wrapping_add(lane.wrapping_mul(PRIME64_2));
    acc = acc.rotate_left(31);
    acc.wrapping_mul(PRIME64_1)
}

#[inline]
fn xxh_merge(acc: u64, lane: u64) -> u64 {
    (acc ^ xxh_round(0, lane))
        .wrapping_mul(PRIME64_1)
        .wrapping_add(PRIME64_4)
}

#[inline]
fn read_u64(b: &[u8]) -> u64 {
    u64::from_le_bytes(b[..8].try_into().expect("8 bytes"))
}

/// One-shot xxHash64 of `data` with the given `seed`.
///
/// Used as the snapshot trailer checksum: fast enough to hash multi-megabyte
/// payloads without showing up in warm-start profiles, and strong enough to
/// catch truncation and bit flips with near-certainty.
pub fn xxhash64(data: &[u8], seed: u64) -> u64 {
    let len = data.len();
    let mut rest = data;
    let mut h = if len >= 32 {
        let mut v1 = seed.wrapping_add(PRIME64_1).wrapping_add(PRIME64_2);
        let mut v2 = seed.wrapping_add(PRIME64_2);
        let mut v3 = seed;
        let mut v4 = seed.wrapping_sub(PRIME64_1);
        while rest.len() >= 32 {
            v1 = xxh_round(v1, read_u64(rest));
            v2 = xxh_round(v2, read_u64(&rest[8..]));
            v3 = xxh_round(v3, read_u64(&rest[16..]));
            v4 = xxh_round(v4, read_u64(&rest[24..]));
            rest = &rest[32..];
        }
        let mut h = v1
            .rotate_left(1)
            .wrapping_add(v2.rotate_left(7))
            .wrapping_add(v3.rotate_left(12))
            .wrapping_add(v4.rotate_left(18));
        h = xxh_merge(h, v1);
        h = xxh_merge(h, v2);
        h = xxh_merge(h, v3);
        xxh_merge(h, v4)
    } else {
        seed.wrapping_add(PRIME64_5)
    };
    h = h.wrapping_add(len as u64);
    while rest.len() >= 8 {
        h ^= xxh_round(0, read_u64(rest));
        h = h
            .rotate_left(27)
            .wrapping_mul(PRIME64_1)
            .wrapping_add(PRIME64_4);
        rest = &rest[8..];
    }
    if rest.len() >= 4 {
        h ^= u64::from(u32::from_le_bytes(rest[..4].try_into().expect("4 bytes")))
            .wrapping_mul(PRIME64_1);
        h = h
            .rotate_left(23)
            .wrapping_mul(PRIME64_2)
            .wrapping_add(PRIME64_3);
        rest = &rest[4..];
    }
    for &b in rest {
        h ^= u64::from(b).wrapping_mul(PRIME64_5);
        h = h.rotate_left(11).wrapping_mul(PRIME64_1);
    }
    h ^= h >> 33;
    h = h.wrapping_mul(PRIME64_2);
    h ^= h >> 29;
    h = h.wrapping_mul(PRIME64_3);
    h ^= h >> 32;
    h
}

/// Seed for the snapshot trailer checksum (any fixed value works; this one
/// marks the stream as ours).
const CHECKSUM_SEED: u64 = 0x7453_4e41_5053_4e41; // "tSNAPSNA"

/// Builder for a complete snapshot file: header, named section table,
/// payloads, trailing checksum.
///
/// Layout (all varints unless noted):
///
/// ```text
/// magic            4 raw bytes
/// version          varint u32
/// key              length-prefixed str (program content hash)
/// section count    varint
///   per section:   name str · payload byte length
/// payloads         concatenated, in table order
/// checksum         fixed u64 LE, xxHash64 of everything above
/// ```
#[derive(Debug)]
pub struct SnapshotWriter {
    magic: [u8; 4],
    version: u32,
    key: String,
    sections: Vec<(String, Vec<u8>)>,
}

impl SnapshotWriter {
    /// Starts a snapshot with the given magic tag, format version, and key.
    pub fn new(magic: [u8; 4], version: u32, key: &str) -> Self {
        Self {
            magic,
            version,
            key: key.to_string(),
            sections: Vec::new(),
        }
    }

    /// Appends a named section. Names must be unique; order is preserved.
    pub fn section(&mut self, name: &str, payload: Vec<u8>) {
        debug_assert!(
            self.sections.iter().all(|(n, _)| n != name),
            "duplicate section {name}"
        );
        self.sections.push((name.to_string(), payload));
    }

    /// Serializes the file, appending the trailer checksum.
    pub fn finish(self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        w.buf.extend_from_slice(&self.magic);
        w.vu64(u64::from(self.version));
        w.str(&self.key);
        w.vusize(self.sections.len());
        for (name, payload) in &self.sections {
            w.str(name);
            w.vusize(payload.len());
        }
        for (_, payload) in &self.sections {
            w.buf.extend_from_slice(payload);
        }
        let sum = xxhash64(&w.buf, CHECKSUM_SEED);
        w.u64_le(sum);
        w.into_bytes()
    }
}

/// Parsed snapshot file: header verified, checksum verified, sections
/// addressable by name.
#[derive(Debug)]
pub struct SnapshotReader<'a> {
    key: &'a str,
    sections: Vec<(&'a str, &'a [u8])>,
}

impl<'a> SnapshotReader<'a> {
    /// Opens `bytes`, verifying magic, version, and the trailer checksum.
    ///
    /// The checksum is verified *first* (before any structural parsing), so
    /// arbitrary corruption reports [`CodecError::Checksum`] rather than a
    /// structural error — except corruption within the final 12 bytes plus
    /// magic/version fields, which report their specific causes.
    pub fn open(bytes: &'a [u8], magic: [u8; 4], version: u32) -> Result<Self, CodecError> {
        if bytes.len() < 4 + 8 {
            return Err(CodecError::Truncated);
        }
        if bytes[..4] != magic {
            return Err(CodecError::BadMagic);
        }
        let (body, trailer) = bytes.split_at(bytes.len() - 8);
        let stored = u64::from_le_bytes(trailer.try_into().expect("8-byte trailer"));
        if xxhash64(body, CHECKSUM_SEED) != stored {
            return Err(CodecError::Checksum);
        }
        let mut r = ByteReader::new(&body[4..]);
        let found =
            u32::try_from(r.vu64()?).map_err(|_| CodecError::Malformed("format version"))?;
        if found != version {
            return Err(CodecError::Version {
                found,
                expected: version,
            });
        }
        let key = r.str()?;
        let count = r.vusize()?;
        let mut table = Vec::with_capacity(count.min(64));
        for _ in 0..count {
            let name = r.str()?;
            let len = r.vusize()?;
            table.push((name, len));
        }
        let mut sections = Vec::with_capacity(table.len());
        for (name, len) in table {
            let end = r.pos.checked_add(len).ok_or(CodecError::Truncated)?;
            let payload = r.buf.get(r.pos..end).ok_or(CodecError::Truncated)?;
            r.pos = end;
            sections.push((name, payload));
        }
        if !r.is_at_end() {
            return Err(CodecError::Malformed("trailing bytes after sections"));
        }
        Ok(Self { key, sections })
    }

    /// The snapshot key (program content hash) from the header.
    pub fn key(&self) -> &'a str {
        self.key
    }

    /// The named section's payload, if present.
    pub fn section(&self, name: &str) -> Option<&'a [u8]> {
        self.sections
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, p)| *p)
    }

    /// Section names in file order.
    pub fn section_names(&self) -> impl Iterator<Item = &'a str> + '_ {
        self.sections.iter().map(|(n, _)| *n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varint_roundtrip_across_widths() {
        let mut w = ByteWriter::new();
        let values = [
            0u64,
            1,
            127,
            128,
            300,
            16_383,
            16_384,
            u64::from(u32::MAX),
            u64::MAX,
        ];
        for &v in &values {
            w.vu64(v);
        }
        let buf = w.into_bytes();
        let mut r = ByteReader::new(&buf);
        for &v in &values {
            assert_eq!(r.vu64().unwrap(), v);
        }
        assert!(r.is_at_end());
    }

    #[test]
    fn zigzag_roundtrip_keeps_small_magnitudes_short() {
        let mut w = ByteWriter::new();
        for v in [-1i64, 0, 1, -64, 63] {
            w.vi64(v);
        }
        assert_eq!(w.len(), 5, "one byte each");
        for v in [i64::MIN, i64::MAX, -1_000_000] {
            w.vi64(v);
        }
        let buf = w.into_bytes();
        let mut r = ByteReader::new(&buf);
        for v in [-1i64, 0, 1, -64, 63, i64::MIN, i64::MAX, -1_000_000] {
            assert_eq!(r.vi64().unwrap(), v);
        }
    }

    #[test]
    fn strings_bytes_and_bools_roundtrip() {
        let mut w = ByteWriter::new();
        w.str("héllo");
        w.bytes(&[0, 1, 2, 255]);
        w.bool(true);
        w.bool(false);
        w.u64_le(0xdead_beef_cafe_f00d);
        let buf = w.into_bytes();
        let mut r = ByteReader::new(&buf);
        assert_eq!(r.str().unwrap(), "héllo");
        assert_eq!(r.bytes().unwrap(), &[0, 1, 2, 255]);
        assert!(r.bool().unwrap());
        assert!(!r.bool().unwrap());
        assert_eq!(r.u64_le().unwrap(), 0xdead_beef_cafe_f00d);
        assert!(r.is_at_end());
    }

    #[test]
    fn bulk_arrays_roundtrip_and_reject_truncation() {
        let words32: Vec<u32> = (0..100u32).map(|i| i.wrapping_mul(2_654_435_761)).collect();
        let words64: Vec<u64> = (0..50).map(|i| u64::MAX - i * 0x0123_4567).collect();
        let mut w = ByteWriter::new();
        w.u32s(&words32);
        w.u64s_le(&words64);
        w.u32s(&[]);
        let buf = w.into_bytes();
        let mut r = ByteReader::new(&buf);
        assert_eq!(r.u32s().unwrap(), words32);
        assert_eq!(r.u64s_le().unwrap(), words64);
        assert_eq!(r.u32s().unwrap(), Vec::<u32>::new());
        assert!(r.is_at_end());
        // Any truncation is caught by the single bounds check.
        for cut in 0..buf.len() {
            let mut r = ByteReader::new(&buf[..cut]);
            let ok = r.u32s().is_ok() && r.u64s_le().is_ok() && r.u32s().is_ok();
            assert!(!ok, "cut at {cut}");
        }
        // A length claiming more elements than the buffer holds errors
        // instead of allocating.
        let mut w = ByteWriter::new();
        w.vusize(usize::MAX / 2);
        let buf = w.into_bytes();
        assert!(ByteReader::new(&buf).u32s().is_err());
    }

    #[test]
    fn truncated_reads_error_without_panicking() {
        let mut w = ByteWriter::new();
        w.str("payload");
        let buf = w.into_bytes();
        for cut in 0..buf.len() {
            let mut r = ByteReader::new(&buf[..cut]);
            assert!(r.str().is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn overlong_varint_is_malformed() {
        let buf = [0x80u8; 11];
        let mut r = ByteReader::new(&buf);
        assert_eq!(r.vu64(), Err(CodecError::Malformed("varint")));
    }

    #[test]
    fn malformed_bool_and_utf8_are_rejected() {
        let mut r = ByteReader::new(&[7]);
        assert_eq!(r.bool(), Err(CodecError::Malformed("bool")));
        let mut w = ByteWriter::new();
        w.bytes(&[0xff, 0xfe]);
        let buf = w.into_bytes();
        let mut r = ByteReader::new(&buf);
        assert_eq!(r.str(), Err(CodecError::Malformed("utf-8 string")));
    }

    /// Reference vectors from the xxHash specification (seed 0 and a
    /// nonzero seed), pinning the implementation to real xxHash64.
    #[test]
    fn xxhash64_matches_reference_vectors() {
        assert_eq!(xxhash64(b"", 0), 0xef46_db37_51d8_e999);
        assert_eq!(xxhash64(b"a", 0), 0xd24e_c4f1_a98c_6e5b);
        assert_eq!(xxhash64(b"abc", 0), 0x44bc_2cf5_ad77_0999);
        assert_eq!(
            xxhash64(b"Nobody inspects the spammish repetition", 0),
            0xfbce_a83c_8a37_8bf1
        );
        assert_eq!(xxhash64(b"xxhash", 20141025), 13067679811253438005);
    }

    #[test]
    fn snapshot_roundtrips_sections_in_order() {
        let mut w = SnapshotWriter::new(*b"TSNP", 3, "0123456789abcdef");
        w.section("alpha", vec![1, 2, 3]);
        w.section("beta", Vec::new());
        w.section("gamma", vec![0xff; 1000]);
        let bytes = w.finish();
        let r = SnapshotReader::open(&bytes, *b"TSNP", 3).unwrap();
        assert_eq!(r.key(), "0123456789abcdef");
        assert_eq!(
            r.section_names().collect::<Vec<_>>(),
            ["alpha", "beta", "gamma"]
        );
        assert_eq!(r.section("alpha").unwrap(), &[1, 2, 3]);
        assert_eq!(r.section("beta").unwrap(), &[] as &[u8]);
        assert_eq!(r.section("gamma").unwrap().len(), 1000);
        assert!(r.section("delta").is_none());
    }

    #[test]
    fn snapshot_rejects_foreign_magic_and_version_skew() {
        let bytes = SnapshotWriter::new(*b"TSNP", 3, "k").finish();
        assert_eq!(
            SnapshotReader::open(&bytes, *b"XXXX", 3).unwrap_err(),
            CodecError::BadMagic
        );
        assert_eq!(
            SnapshotReader::open(&bytes, *b"TSNP", 4).unwrap_err(),
            CodecError::Version {
                found: 3,
                expected: 4
            }
        );
    }

    #[test]
    fn snapshot_detects_every_single_bit_flip() {
        let mut w = SnapshotWriter::new(*b"TSNP", 1, "deadbeefdeadbeef");
        let mut sec = ByteWriter::new();
        for i in 0..100u64 {
            sec.vu64(i * 7);
        }
        w.section("data", sec.into_bytes());
        let bytes = w.finish();
        assert!(SnapshotReader::open(&bytes, *b"TSNP", 1).is_ok());
        for byte in 0..bytes.len() {
            let mut flipped = bytes.clone();
            flipped[byte] ^= 1;
            assert!(
                SnapshotReader::open(&flipped, *b"TSNP", 1).is_err(),
                "flip at byte {byte} must be detected"
            );
        }
    }

    #[test]
    fn snapshot_detects_every_truncation() {
        let mut w = SnapshotWriter::new(*b"TSNP", 1, "k");
        w.section("s", vec![9; 64]);
        let bytes = w.finish();
        for cut in 0..bytes.len() {
            assert!(
                SnapshotReader::open(&bytes[..cut], *b"TSNP", 1).is_err(),
                "truncation to {cut} bytes must be detected"
            );
        }
    }
}
