//! Fx hashing: the fast, non-cryptographic hash used by rustc.
//!
//! The analysis crates key hash maps almost exclusively by small dense
//! integers and short tuples of them (statement refs, call-graph nodes,
//! object ids). SipHash — the `std` default — burns most of its time on
//! DoS resistance these internal tables do not need. This module is a
//! dependency-free reimplementation of the `rustc-hash` algorithm (the
//! crates.io crate is intentionally not pulled in: the build must work
//! without network access), exposing the same `FxHashMap`/`FxHashSet`
//! aliases so call sites read identically to code using the real crate.
//!
//! # Examples
//!
//! ```
//! use thinslice_util::{FxHashMap, FxHashSet};
//!
//! let mut m: FxHashMap<u32, &str> = FxHashMap::default();
//! m.insert(7, "seven");
//! assert_eq!(m.get(&7), Some(&"seven"));
//! let s: FxHashSet<u32> = [1, 2, 2, 3].into_iter().collect();
//! assert_eq!(s.len(), 3);
//! ```

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// A `HashMap` using [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;

/// A `HashSet` using [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, BuildHasherDefault<FxHasher>>;

/// The multiplier from rustc's Fx hash (a pi-derived odd constant).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The Fx hash state: one 64-bit word folded with rotate-xor-multiply.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add_to_hash(u64::from_ne_bytes(c.try_into().unwrap()));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut word = [0u8; 8];
            word[..rest.len()].copy_from_slice(rest);
            self.add_to_hash(u64::from_ne_bytes(word));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_keys_hash_equal() {
        let mut a = FxHasher::default();
        let mut b = FxHasher::default();
        a.write_u64(0xdead_beef);
        b.write_u64(0xdead_beef);
        assert_eq!(a.finish(), b.finish());
    }

    #[test]
    fn byte_writes_cover_partial_words() {
        let mut a = FxHasher::default();
        a.write(&[1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11]);
        let mut b = FxHasher::default();
        b.write(&[1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 12]);
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn map_and_set_behave() {
        let mut m: FxHashMap<(u32, u32), u32> = FxHashMap::default();
        for i in 0..1000u32 {
            m.insert((i, i * 2), i);
        }
        assert_eq!(m.len(), 1000);
        assert_eq!(m[&(41, 82)], 41);
        let s: FxHashSet<u64> = (0..100).collect();
        assert!(s.contains(&99));
        assert!(!s.contains(&100));
    }
}
