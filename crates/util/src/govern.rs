//! Resource governance: budgets, cancellation and honest partial results.
//!
//! Demand-driven analyses must stay responsive on adversarial inputs: a
//! pathological seed can otherwise spin a worklist solver for minutes. This
//! module provides the vocabulary every pipeline stage shares:
//!
//! * [`Budget`] — a declarative resource envelope (wall-clock deadline,
//!   step quota, resident-set watermark, cancellation token),
//! * [`CancelToken`] — a shareable flag for cooperative cancellation,
//! * [`Meter`] — the per-stage enforcement state, designed so the common
//!   (unlimited) case costs one predictable branch per work item,
//! * [`Completeness`] / [`Outcome`] — how a stage labels what it returns:
//!   either the full fixpoint or a truncated prefix with the reason and the
//!   size of the abandoned frontier.
//!
//! Exhaustion never aborts: a stage that runs out of budget stops pulling
//! work, reports `Truncated`, and returns whatever sound partial result its
//! monotone worklist had accumulated.
//!
//! # Examples
//!
//! ```
//! use thinslice_util::govern::{Budget, Completeness};
//!
//! let mut meter = Budget::default().with_step_limit(3).meter();
//! let mut done = 0;
//! let mut pending = vec![1, 2, 3, 4, 5];
//! while let Some(item) = pending.pop() {
//!     if !meter.tick() {
//!         pending.push(item); // the popped item is still unprocessed
//!         break;
//!     }
//!     done += 1;
//! }
//! assert_eq!(done, 3);
//! let c = meter.completeness(pending.len());
//! assert!(matches!(c, Completeness::Truncated { frontier: 2, .. }));
//! ```

use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Why a stage stopped before reaching its fixpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ExhaustReason {
    /// The wall-clock deadline passed.
    Deadline,
    /// The step / edge-visit quota was used up.
    StepQuota,
    /// The resident-set watermark was exceeded.
    Memory,
    /// The shared [`CancelToken`] was triggered.
    Cancelled,
}

impl fmt::Display for ExhaustReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ExhaustReason::Deadline => "deadline",
            ExhaustReason::StepQuota => "step quota",
            ExhaustReason::Memory => "memory watermark",
            ExhaustReason::Cancelled => "cancelled",
        })
    }
}

/// A shareable cooperative-cancellation flag.
///
/// Cloning shares the flag: cancelling any clone cancels them all. Used by
/// `--fail-fast` batches to stop sibling workers after the first hard error.
#[derive(Debug, Clone, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl PartialEq for CancelToken {
    /// Tokens are equal when they share the same underlying flag, i.e.
    /// cancelling one cancels the other.
    fn eq(&self, other: &Self) -> bool {
        Arc::ptr_eq(&self.0, &other.0)
    }
}

impl Eq for CancelToken {}

impl CancelToken {
    /// Creates a fresh, uncancelled token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests cancellation; every clone observes it.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Relaxed);
    }

    /// Whether cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Relaxed)
    }
}

/// A declarative resource envelope for one analysis stage or query.
///
/// The default budget is unlimited in every dimension; limits compose by
/// builder calls. A `Budget` is inert — call [`Budget::meter`] at the start
/// of a stage to arm it (the deadline is measured from that moment).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Budget {
    time_limit: Option<Duration>,
    step_limit: Option<u64>,
    resident_limit: Option<usize>,
    cancel: Option<CancelToken>,
}

impl Budget {
    /// An explicitly unlimited budget (same as `Budget::default()`).
    pub fn unlimited() -> Self {
        Self::default()
    }

    /// Limits wall-clock time, measured from [`Budget::meter`].
    pub fn with_deadline(mut self, limit: Duration) -> Self {
        self.time_limit = Some(limit);
        self
    }

    /// Limits the number of metered work items (worklist pops, edge visits).
    pub fn with_step_limit(mut self, steps: u64) -> Self {
        self.step_limit = Some(steps);
        self
    }

    /// Limits the tracked resident-set size (elements, not bytes) that a
    /// stage reports via [`Meter::tick_tracked`].
    pub fn with_resident_limit(mut self, elems: usize) -> Self {
        self.resident_limit = Some(elems);
        self
    }

    /// Attaches a cancellation token.
    pub fn with_cancel(mut self, token: CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }

    /// The attached cancellation token, if any.
    pub fn cancel_token(&self) -> Option<&CancelToken> {
        self.cancel.as_ref()
    }

    /// Tightens the step limit to at most `steps` (keeps the smaller limit).
    pub fn cap_steps(mut self, steps: u64) -> Self {
        self.step_limit = Some(self.step_limit.map_or(steps, |s| s.min(steps)));
        self
    }

    /// Whether no dimension is limited (governance can be skipped).
    pub fn is_unlimited(&self) -> bool {
        self.time_limit.is_none()
            && self.step_limit.is_none()
            && self.resident_limit.is_none()
            && self.cancel.is_none()
    }

    /// Arms the budget for one stage: the deadline clock starts now.
    pub fn meter(&self) -> Meter {
        Meter::new(self)
    }
}

/// How often the slow checks (clock, cancellation) run, in work items.
const CHECK_INTERVAL: u64 = 1024;

/// Per-stage budget enforcement.
///
/// The hot path is [`Meter::tick`] (or [`Meter::tick_tracked`]): one
/// decrement-and-branch per work item. Every `CHECK_INTERVAL` items — or
/// exactly at the step quota, whichever is sooner — the meter consults the
/// clock, the cancellation token and the resident watermark. The stride
/// adapts to the remaining quota, so small quotas are enforced exactly.
#[derive(Debug, Clone)]
pub struct Meter {
    /// Items allowed in total (`u64::MAX` when unlimited).
    step_limit: u64,
    /// Items accounted for by completed check windows.
    steps_used: u64,
    /// Size of the current check window.
    stride: u64,
    /// Items left in the current window before the next slow check.
    until_check: u64,
    deadline: Option<Instant>,
    resident_limit: usize,
    cancel: Option<CancelToken>,
    exhausted: Option<ExhaustReason>,
    /// How many slow checks (clock/cancel/watermark consultations) ran.
    checks: u64,
}

impl Meter {
    fn new(budget: &Budget) -> Self {
        let step_limit = budget.step_limit.unwrap_or(u64::MAX);
        let stride = step_limit.min(CHECK_INTERVAL);
        let mut meter = Self {
            step_limit,
            steps_used: 0,
            stride,
            until_check: stride,
            deadline: budget.time_limit.map(|d| Instant::now() + d),
            resident_limit: budget.resident_limit.unwrap_or(usize::MAX),
            cancel: budget.cancel.clone(),
            exhausted: None,
            checks: 0,
        };
        // Arming after cancellation yields an immediately-exhausted meter,
        // so fail-fast stops even queries too small to reach a slow check.
        if meter.cancel.as_ref().is_some_and(|c| c.is_cancelled()) {
            meter.exhaust(ExhaustReason::Cancelled);
        }
        meter
    }

    /// A meter that never exhausts — the zero-cost default.
    pub fn unlimited() -> Self {
        Budget::default().meter()
    }

    /// Accounts for one work item; returns `false` once the budget is
    /// exhausted. After the first `false`, every further call is `false`.
    ///
    /// The caller must NOT process the item on `false`: push it back onto
    /// the frontier so the abandoned-work count stays honest.
    #[inline]
    pub fn tick(&mut self) -> bool {
        self.tick_tracked(0)
    }

    /// Like [`Meter::tick`], also reporting the stage's current tracked
    /// resident-set size (checked against the watermark at slow checks).
    #[inline]
    pub fn tick_tracked(&mut self, resident: usize) -> bool {
        if self.until_check > 0 {
            self.until_check -= 1;
            true
        } else {
            self.slow_check(resident)
        }
    }

    #[cold]
    fn slow_check(&mut self, resident: usize) -> bool {
        self.checks += 1;
        if self.exhausted.is_some() {
            return false;
        }
        // The window that just drained is now fully used.
        self.steps_used += self.stride;
        if let Some(c) = &self.cancel {
            if c.is_cancelled() {
                return self.exhaust(ExhaustReason::Cancelled);
            }
        }
        if let Some(d) = self.deadline {
            if Instant::now() >= d {
                return self.exhaust(ExhaustReason::Deadline);
            }
        }
        if resident > self.resident_limit {
            return self.exhaust(ExhaustReason::Memory);
        }
        let remaining = self.step_limit - self.steps_used;
        if remaining == 0 {
            return self.exhaust(ExhaustReason::StepQuota);
        }
        // Open the next window: this call admits one item itself.
        self.stride = remaining.min(CHECK_INTERVAL);
        self.until_check = self.stride - 1;
        true
    }

    /// Runs the slow checks (cancellation, deadline, resident watermark,
    /// step quota) immediately, without waiting for the current check
    /// window to drain.
    ///
    /// [`Meter::tick_tracked`] polices the watermark at `CHECK_INTERVAL`
    /// granularity, which is right for per-item worklists but useless for
    /// callers that make a handful of coarse decisions — a session pool
    /// deciding whether the fleet's resident total still fits is the
    /// motivating case. Step accounting stays exact: the consumed portion
    /// of the current window is folded into the total and a fresh window
    /// is opened, so interleaving `check_now` with `tick` never over- or
    /// under-counts.
    pub fn check_now(&mut self, resident: usize) -> bool {
        self.checks += 1;
        if self.exhausted.is_some() {
            return false;
        }
        self.steps_used += self.stride - self.until_check;
        if let Some(c) = &self.cancel {
            if c.is_cancelled() {
                return self.exhaust(ExhaustReason::Cancelled);
            }
        }
        if let Some(d) = self.deadline {
            if Instant::now() >= d {
                return self.exhaust(ExhaustReason::Deadline);
            }
        }
        if resident > self.resident_limit {
            return self.exhaust(ExhaustReason::Memory);
        }
        let remaining = self.step_limit - self.steps_used;
        if remaining == 0 {
            return self.exhaust(ExhaustReason::StepQuota);
        }
        // Unlike `slow_check`, this call is not tied to a work item, so the
        // fresh window starts full.
        self.stride = remaining.min(CHECK_INTERVAL);
        self.until_check = self.stride;
        true
    }

    fn exhaust(&mut self, reason: ExhaustReason) -> bool {
        self.exhausted = Some(reason);
        // Zero the window so `steps_used()` stops at the accounted total.
        self.stride = 0;
        self.until_check = 0;
        false
    }

    /// Whether the budget has been exhausted.
    pub fn is_exhausted(&self) -> bool {
        self.exhausted.is_some()
    }

    /// Why the budget was exhausted, if it was.
    pub fn reason(&self) -> Option<ExhaustReason> {
        self.exhausted
    }

    /// Items admitted so far (counts whole windows plus the current one's
    /// consumed portion).
    pub fn steps_used(&self) -> u64 {
        self.steps_used + (self.stride - self.until_check)
    }

    /// How many slow checks (clock, cancellation, watermark) have run —
    /// the governance-overhead figure telemetry reports.
    pub fn slow_checks(&self) -> u64 {
        self.checks
    }

    /// Labels a finished stage: [`Completeness::Complete`] if the meter
    /// never ran out, otherwise [`Completeness::Truncated`] carrying the
    /// reason and the caller-reported abandoned-frontier size.
    pub fn completeness(&self, frontier: usize) -> Completeness {
        match self.exhausted {
            None => Completeness::Complete,
            Some(reason) => Completeness::Truncated { reason, frontier },
        }
    }
}

/// Whether a stage reached its fixpoint or stopped early.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Completeness {
    /// The stage ran to its natural fixpoint; the result is exact.
    Complete,
    /// The stage stopped early; the result is a sound under-approximation.
    Truncated {
        /// What resource ran out.
        reason: ExhaustReason,
        /// Lower bound on the abandoned pending work items.
        frontier: usize,
    },
}

impl Completeness {
    /// Whether the stage ran to completion.
    pub fn is_complete(&self) -> bool {
        matches!(self, Completeness::Complete)
    }

    /// Combines two stage labels: complete only if both are.
    pub fn and(self, other: Completeness) -> Completeness {
        match (self, other) {
            (Completeness::Complete, c) => c,
            (c, _) => c,
        }
    }
}

impl fmt::Display for Completeness {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Completeness::Complete => f.write_str("complete"),
            Completeness::Truncated { reason, frontier } => {
                write!(f, "truncated ({reason}; ~{frontier} pending)")
            }
        }
    }
}

/// A stage result labelled with its [`Completeness`].
#[derive(Debug, Clone)]
pub struct Outcome<T> {
    /// The (possibly partial) result.
    pub result: T,
    /// Whether `result` is exact or a truncated prefix.
    pub completeness: Completeness,
}

impl<T> Outcome<T> {
    /// Labels `result` as exact.
    pub fn complete(result: T) -> Self {
        Self {
            result,
            completeness: Completeness::Complete,
        }
    }

    /// Pairs `result` with an explicit label.
    pub fn new(result: T, completeness: Completeness) -> Self {
        Self {
            result,
            completeness,
        }
    }

    /// Whether the result is exact.
    pub fn is_complete(&self) -> bool {
        self.completeness.is_complete()
    }

    /// Maps the result, keeping the label.
    pub fn map<U>(self, f: impl FnOnce(T) -> U) -> Outcome<U> {
        Outcome {
            result: f(self.result),
            completeness: self.completeness,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_meter_never_exhausts() {
        let mut m = Meter::unlimited();
        for _ in 0..100_000 {
            assert!(m.tick());
        }
        assert!(!m.is_exhausted());
        assert_eq!(m.completeness(0), Completeness::Complete);
    }

    #[test]
    fn step_quota_is_exact() {
        for quota in [1u64, 2, 3, 5, 1023, 1024, 1025, 4096] {
            let mut m = Budget::default().with_step_limit(quota).meter();
            let mut admitted = 0u64;
            while m.tick() {
                admitted += 1;
                assert!(admitted <= quota, "quota {quota} overrun");
            }
            assert_eq!(admitted, quota, "quota {quota}");
            assert_eq!(m.reason(), Some(ExhaustReason::StepQuota));
            // Exhaustion is sticky.
            assert!(!m.tick());
            assert_eq!(m.steps_used(), quota);
        }
    }

    #[test]
    fn zero_step_quota_admits_nothing() {
        let mut m = Budget::default().with_step_limit(0).meter();
        assert!(!m.tick());
        assert_eq!(m.reason(), Some(ExhaustReason::StepQuota));
    }

    #[test]
    fn deadline_in_the_past_exhausts() {
        let mut m = Budget::default().with_deadline(Duration::ZERO).meter();
        let mut admitted = 0u64;
        while m.tick() {
            admitted += 1;
            assert!(admitted <= 2 * CHECK_INTERVAL, "deadline never checked");
        }
        assert_eq!(m.reason(), Some(ExhaustReason::Deadline));
    }

    #[test]
    fn cancellation_is_observed() {
        let token = CancelToken::new();
        let mut m = Budget::default().with_cancel(token.clone()).meter();
        assert!(m.tick());
        token.cancel();
        let mut admitted = 0u64;
        while m.tick() {
            admitted += 1;
            assert!(admitted <= 2 * CHECK_INTERVAL, "cancel never checked");
        }
        assert_eq!(m.reason(), Some(ExhaustReason::Cancelled));
        assert!(token.is_cancelled());

        // A meter armed after cancellation starts exhausted.
        let mut late = Budget::default().with_cancel(token.clone()).meter();
        assert!(!late.tick());
        assert_eq!(late.reason(), Some(ExhaustReason::Cancelled));
    }

    #[test]
    fn resident_watermark_trips_at_slow_check() {
        let mut m = Budget::default()
            .with_resident_limit(10)
            .with_step_limit(2048)
            .meter();
        let mut admitted = 0u64;
        while m.tick_tracked(1000) {
            admitted += 1;
        }
        // The first slow check after the initial window sees the watermark.
        assert_eq!(m.reason(), Some(ExhaustReason::Memory));
        assert!(admitted <= CHECK_INTERVAL);
    }

    #[test]
    fn check_now_trips_watermark_immediately() {
        // tick_tracked would admit a whole CHECK_INTERVAL window first;
        // check_now consults the watermark on the spot.
        let mut m = Budget::default().with_resident_limit(10).meter();
        assert!(m.check_now(10));
        assert!(!m.check_now(11));
        assert_eq!(m.reason(), Some(ExhaustReason::Memory));
        // Exhaustion is sticky, even back under the watermark.
        assert!(!m.check_now(0));
        assert!(!m.tick());
    }

    #[test]
    fn check_now_keeps_step_accounting_exact() {
        let mut m = Budget::default().with_step_limit(2048).meter();
        for _ in 0..5 {
            assert!(m.tick());
        }
        assert!(m.check_now(0));
        assert_eq!(m.steps_used(), 5);
        let mut admitted = 5;
        while m.tick() {
            admitted += 1;
        }
        assert_eq!(admitted, 2048, "quota stays exact across check_now");
        assert_eq!(m.reason(), Some(ExhaustReason::StepQuota));
    }

    #[test]
    fn check_now_observes_cancellation_and_unlimited_budgets() {
        let mut m = Meter::unlimited();
        assert!(m.check_now(usize::MAX - 1));

        let token = CancelToken::new();
        let mut m = Budget::default().with_cancel(token.clone()).meter();
        assert!(m.check_now(0));
        token.cancel();
        assert!(!m.check_now(0));
        assert_eq!(m.reason(), Some(ExhaustReason::Cancelled));
    }

    #[test]
    fn cap_steps_keeps_the_smaller_limit() {
        let b = Budget::default().with_step_limit(100).cap_steps(7);
        let mut m = b.meter();
        let mut admitted = 0;
        while m.tick() {
            admitted += 1;
        }
        assert_eq!(admitted, 7);

        let b = Budget::default().with_step_limit(3).cap_steps(100);
        let mut m = b.meter();
        let mut admitted = 0;
        while m.tick() {
            admitted += 1;
        }
        assert_eq!(admitted, 3);

        assert!(!Budget::default().cap_steps(5).is_unlimited());
    }

    #[test]
    fn completeness_combinators() {
        let t = Completeness::Truncated {
            reason: ExhaustReason::StepQuota,
            frontier: 4,
        };
        assert!(Completeness::Complete.is_complete());
        assert!(!t.is_complete());
        assert_eq!(Completeness::Complete.and(t), t);
        assert_eq!(t.and(Completeness::Complete), t);
        assert_eq!(
            Completeness::Complete.and(Completeness::Complete),
            Completeness::Complete
        );
        assert_eq!(t.to_string(), "truncated (step quota; ~4 pending)");
    }

    #[test]
    fn outcome_map_keeps_label() {
        let o = Outcome::new(
            3usize,
            Completeness::Truncated {
                reason: ExhaustReason::Deadline,
                frontier: 1,
            },
        )
        .map(|n| n * 2);
        assert_eq!(o.result, 6);
        assert!(!o.is_complete());
        assert!(Outcome::complete(1).is_complete());
    }

    #[test]
    fn budget_unlimited_flag() {
        assert!(Budget::default().is_unlimited());
        assert!(!Budget::default().with_step_limit(1).is_unlimited());
        assert!(!Budget::default()
            .with_deadline(Duration::from_secs(1))
            .is_unlimited());
        assert!(!Budget::default()
            .with_cancel(CancelToken::new())
            .is_unlimited());
    }
}
