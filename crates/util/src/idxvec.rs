//! A `Vec` indexed by a typed dense index.

use crate::Idx;
use std::fmt;
use std::marker::PhantomData;
use std::ops::{Index, IndexMut};

/// A growable vector indexed by an [`Idx`] newtype instead of `usize`.
///
/// Using typed indices prevents mixing up, say, block ids and variable ids
/// at compile time.
///
/// # Examples
///
/// ```
/// use thinslice_util::{new_index, IdxVec};
/// new_index!(pub struct VarId);
///
/// let mut v: IdxVec<VarId, &str> = IdxVec::new();
/// let a = v.push("a");
/// let b = v.push("b");
/// assert_eq!(v[a], "a");
/// assert_eq!(v[b], "b");
/// assert_eq!(v.len(), 2);
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct IdxVec<I: Idx, T> {
    raw: Vec<T>,
    _marker: PhantomData<fn(I)>,
}

impl<I: Idx, T> IdxVec<I, T> {
    /// Creates an empty vector.
    pub fn new() -> Self {
        Self {
            raw: Vec::new(),
            _marker: PhantomData,
        }
    }

    /// Creates an empty vector with the given capacity.
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            raw: Vec::with_capacity(cap),
            _marker: PhantomData,
        }
    }

    /// Creates a vector of `n` clones of `value`.
    pub fn from_elem(value: T, n: usize) -> Self
    where
        T: Clone,
    {
        Self {
            raw: vec![value; n],
            _marker: PhantomData,
        }
    }

    /// Wraps an existing `Vec`, adopting positional indices.
    pub fn from_raw(raw: Vec<T>) -> Self {
        Self {
            raw,
            _marker: PhantomData,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.raw.len()
    }

    /// Whether the vector is empty.
    pub fn is_empty(&self) -> bool {
        self.raw.is_empty()
    }

    /// Appends an element, returning its index.
    pub fn push(&mut self, value: T) -> I {
        let id = I::from_usize(self.raw.len());
        self.raw.push(value);
        id
    }

    /// The index the *next* `push` will return.
    pub fn next_index(&self) -> I {
        I::from_usize(self.raw.len())
    }

    /// Returns a reference if `index` is in bounds.
    pub fn get(&self, index: I) -> Option<&T> {
        self.raw.get(index.index())
    }

    /// Returns a mutable reference if `index` is in bounds.
    pub fn get_mut(&mut self, index: I) -> Option<&mut T> {
        self.raw.get_mut(index.index())
    }

    /// Iterates over the elements.
    pub fn iter(&self) -> std::slice::Iter<'_, T> {
        self.raw.iter()
    }

    /// Iterates over the elements mutably.
    pub fn iter_mut(&mut self) -> std::slice::IterMut<'_, T> {
        self.raw.iter_mut()
    }

    /// Iterates over `(index, &element)` pairs.
    pub fn iter_enumerated(&self) -> impl Iterator<Item = (I, &T)> + '_ {
        self.raw
            .iter()
            .enumerate()
            .map(|(i, t)| (I::from_usize(i), t))
    }

    /// Iterates over all valid indices.
    pub fn indices(&self) -> impl Iterator<Item = I> + 'static {
        (0..self.raw.len()).map(I::from_usize)
    }

    /// Borrows the underlying slice.
    pub fn as_slice(&self) -> &[T] {
        &self.raw
    }

    /// Consumes the vector, returning the underlying `Vec`.
    pub fn into_raw(self) -> Vec<T> {
        self.raw
    }

    /// Grows the vector with clones of `value` until `index` is valid.
    pub fn ensure_contains(&mut self, index: I, value: T)
    where
        T: Clone,
    {
        if index.index() >= self.raw.len() {
            self.raw.resize(index.index() + 1, value);
        }
    }
}

impl<I: Idx, T> Default for IdxVec<I, T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<I: Idx, T: fmt::Debug> fmt::Debug for IdxVec<I, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_list().entries(self.raw.iter()).finish()
    }
}

impl<I: Idx, T> Index<I> for IdxVec<I, T> {
    type Output = T;
    #[inline]
    fn index(&self, index: I) -> &T {
        &self.raw[index.index()]
    }
}

impl<I: Idx, T> IndexMut<I> for IdxVec<I, T> {
    #[inline]
    fn index_mut(&mut self, index: I) -> &mut T {
        &mut self.raw[index.index()]
    }
}

impl<I: Idx, T> FromIterator<T> for IdxVec<I, T> {
    fn from_iter<It: IntoIterator<Item = T>>(iter: It) -> Self {
        Self::from_raw(iter.into_iter().collect())
    }
}

impl<I: Idx, T> Extend<T> for IdxVec<I, T> {
    fn extend<It: IntoIterator<Item = T>>(&mut self, iter: It) {
        self.raw.extend(iter);
    }
}

impl<'a, I: Idx, T> IntoIterator for &'a IdxVec<I, T> {
    type Item = &'a T;
    type IntoIter = std::slice::Iter<'a, T>;
    fn into_iter(self) -> Self::IntoIter {
        self.raw.iter()
    }
}

impl<I: Idx, T> IntoIterator for IdxVec<I, T> {
    type Item = T;
    type IntoIter = std::vec::IntoIter<T>;
    fn into_iter(self) -> Self::IntoIter {
        self.raw.into_iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::new_index;

    new_index!(struct Id);

    #[test]
    fn push_and_index() {
        let mut v: IdxVec<Id, i32> = IdxVec::new();
        let a = v.push(10);
        let b = v.push(20);
        assert_eq!(v[a], 10);
        v[b] = 25;
        assert_eq!(v[b], 25);
        assert_eq!(v.next_index(), Id::new(2));
    }

    #[test]
    fn iter_enumerated_yields_ordered_ids() {
        let v: IdxVec<Id, char> = "abc".chars().collect();
        let pairs: Vec<_> = v.iter_enumerated().map(|(i, c)| (i.index(), *c)).collect();
        assert_eq!(pairs, vec![(0, 'a'), (1, 'b'), (2, 'c')]);
    }

    #[test]
    fn ensure_contains_grows() {
        let mut v: IdxVec<Id, i32> = IdxVec::new();
        v.ensure_contains(Id::new(3), 0);
        assert_eq!(v.len(), 4);
        assert_eq!(v[Id::new(3)], 0);
    }

    #[test]
    fn get_out_of_bounds_is_none() {
        let v: IdxVec<Id, i32> = IdxVec::new();
        assert!(v.get(Id::new(0)).is_none());
    }
}
