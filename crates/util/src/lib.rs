#![warn(missing_docs)]

//! Small data-structure utilities shared by the thin-slicing crates.
//!
//! The analysis crates index almost everything densely (classes, methods,
//! variables, statements, abstract objects…). This crate provides:
//!
//! * [`new_index!`] — a macro declaring a typed index newtype,
//! * [`IdxVec`] — a `Vec` indexed by such a newtype,
//! * [`BitSet`] — a dense bitset used for points-to sets and slice sets,
//! * [`codec`] — a hand-rolled binary codec (varints, section tables,
//!   xxHash64 checksums) backing the persistent snapshot format,
//! * [`Worklist`] — a FIFO worklist with membership dedup,
//! * [`UnionFind`] — used for heap-partition merging,
//! * [`FxHashMap`]/[`FxHashSet`] — fast non-DoS-resistant hashing for the
//!   analyses' internal tables,
//! * [`par`] — an order-preserving parallel map for batched queries,
//! * [`govern`] — resource budgets, cancellation and truncation labels
//!   shared by every analysis stage,
//! * [`telemetry`] — tracing spans, a metrics registry and JSON run
//!   reports, zero-cost when disabled,
//! * [`RunCtx`] — the run-wide context bundling telemetry + budget,
//!   threaded as one parameter through every pipeline stage,
//! * [`SmallRng`] — a deterministic PRNG for generators and tests.
//!
//! # Examples
//!
//! ```
//! use thinslice_util::{new_index, IdxVec};
//!
//! new_index!(pub struct NodeId);
//! let mut names: IdxVec<NodeId, String> = IdxVec::new();
//! let n = names.push("entry".to_string());
//! assert_eq!(names[n], "entry");
//! ```

mod bitset;
pub mod codec;
mod fx;
pub mod govern;
mod idxvec;
pub mod par;
mod rng;
pub mod runctx;
pub mod telemetry;
mod unionfind;
mod worklist;

pub use bitset::{BitSet, BitSetIter};
pub use codec::{ByteReader, ByteWriter, CodecError, SnapshotReader, SnapshotWriter};
pub use fx::{FxHashMap, FxHashSet, FxHasher};
pub use govern::{Budget, CancelToken, Completeness, ExhaustReason, Meter, Outcome};
pub use idxvec::IdxVec;
pub use rng::SmallRng;
pub use runctx::RunCtx;
pub use telemetry::{
    FlightEvent, FlightKind, FlightRecorder, Histogram, MetricsRegistry, RunReport, Telemetry,
};
pub use unionfind::UnionFind;
pub use worklist::Worklist;

/// Types usable as dense indices into [`IdxVec`] and [`BitSet`].
///
/// Implemented automatically by [`new_index!`]; implement it manually only
/// for types that are already small dense integers.
pub trait Idx: Copy + Eq + std::hash::Hash + std::fmt::Debug + 'static {
    /// Builds an index from a raw `usize`.
    fn from_usize(i: usize) -> Self;
    /// Returns the raw `usize` behind the index.
    fn index(self) -> usize;
}

impl Idx for usize {
    #[inline]
    fn from_usize(i: usize) -> Self {
        i
    }
    #[inline]
    fn index(self) -> usize {
        self
    }
}

impl Idx for u32 {
    #[inline]
    fn from_usize(i: usize) -> Self {
        u32::try_from(i).expect("index exceeds u32")
    }
    #[inline]
    fn index(self) -> usize {
        self as usize
    }
}

/// Declares a dense index newtype wrapping a `u32`.
///
/// The generated type implements [`Idx`], ordering and formatting traits, and
/// a `const fn new` plus `raw()` accessor.
///
/// # Examples
///
/// ```
/// use thinslice_util::{new_index, Idx};
/// new_index!(pub struct BlockId);
/// let b = BlockId::new(3);
/// assert_eq!(b.index(), 3);
/// assert_eq!(format!("{b:?}"), "BlockId(3)");
/// ```
#[macro_export]
macro_rules! new_index {
    ($(#[$meta:meta])* $vis:vis struct $name:ident) => {
        $(#[$meta])*
        #[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
        $vis struct $name(u32);

        impl $name {
            /// Creates the index from a raw `usize`.
            ///
            /// # Panics
            ///
            /// Panics if `i` does not fit in a `u32`.
            #[inline]
            $vis fn new(i: usize) -> Self {
                assert!(i <= u32::MAX as usize, "index exceeds u32");
                Self(i as u32)
            }

            /// Returns the raw numeric value.
            #[inline]
            #[allow(dead_code)] // part of the generated API; not every index type uses it
            $vis fn raw(self) -> u32 {
                self.0
            }
        }

        impl $crate::Idx for $name {
            #[inline]
            fn from_usize(i: usize) -> Self {
                Self::new(i)
            }
            #[inline]
            fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl ::std::fmt::Debug for $name {
            fn fmt(&self, f: &mut ::std::fmt::Formatter<'_>) -> ::std::fmt::Result {
                write!(f, concat!(stringify!($name), "({})"), self.0)
            }
        }

        impl ::std::fmt::Display for $name {
            fn fmt(&self, f: &mut ::std::fmt::Formatter<'_>) -> ::std::fmt::Result {
                write!(f, "{}", self.0)
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    new_index!(pub struct TestId);

    #[test]
    fn new_index_roundtrip() {
        let t = TestId::new(42);
        assert_eq!(t.index(), 42);
        assert_eq!(t.raw(), 42);
        assert_eq!(TestId::from_usize(42), t);
    }

    #[test]
    fn new_index_ordering() {
        assert!(TestId::new(1) < TestId::new(2));
        assert_eq!(TestId::new(7), TestId::new(7));
    }

    #[test]
    fn new_index_display() {
        assert_eq!(TestId::new(9).to_string(), "9");
        assert_eq!(format!("{:?}", TestId::new(9)), "TestId(9)");
    }

    #[test]
    #[should_panic(expected = "index exceeds u32")]
    fn new_index_overflow_panics() {
        let _ = TestId::new(u32::MAX as usize + 1);
    }
}
