//! A minimal data-parallel executor over scoped threads.
//!
//! The batched slicing engine fans independent queries out across cores.
//! `rayon` would be the natural dependency, but the build must work without
//! network access, so this module provides the one primitive the engine
//! needs: an order-preserving parallel map with per-worker state, built on
//! `std::thread::scope` and an atomic work counter (dynamic load balancing,
//! no work splitting heuristics to tune).
//!
//! Results are returned in input order regardless of completion order, so
//! parallel callers observe exactly the sequential output.
//!
//! # Examples
//!
//! ```
//! use thinslice_util::par;
//!
//! let squares = par::map_with(&[1u64, 2, 3, 4], 2, || (), |(), _i, x| x * x);
//! assert_eq!(squares, vec![1, 4, 9, 16]);
//! ```

use std::sync::atomic::{AtomicUsize, Ordering};

/// The number of worker threads to use by default: the machine's available
/// parallelism (1 when it cannot be determined).
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Maps `f` over `items` on up to `threads` worker threads, giving each
/// worker a private scratch state built by `init`; returns the results in
/// input order.
///
/// With `threads <= 1` (or one item) everything runs on the calling thread
/// with no spawning, so single-threaded behaviour is exactly a `for` loop —
/// useful both for determinism tests and for machines without spare cores.
pub fn map_with<T, R, S, I, F>(items: &[T], threads: usize, init: I, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize, &T) -> R + Sync,
{
    let threads = threads.clamp(1, items.len().max(1));
    if threads == 1 {
        let mut scratch = init();
        return items
            .iter()
            .enumerate()
            .map(|(i, t)| f(&mut scratch, i, t))
            .collect();
    }

    let next = AtomicUsize::new(0);
    let mut slots: Vec<Option<R>> = std::thread::scope(|scope| {
        let workers: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(|| {
                    let mut scratch = init();
                    let mut produced = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= items.len() {
                            break;
                        }
                        produced.push((i, f(&mut scratch, i, &items[i])));
                    }
                    produced
                })
            })
            .collect();
        let mut slots: Vec<Option<R>> = (0..items.len()).map(|_| None).collect();
        for w in workers {
            // A panic in a worker propagates here, matching sequential
            // behaviour (the panic surfaces to the caller).
            for (i, r) in w.join().expect("parallel map worker panicked") {
                slots[i] = Some(r);
            }
        }
        slots
    });
    slots
        .iter_mut()
        .map(|s| s.take().expect("every index produced"))
        .collect()
}

/// [`map_with`] without per-worker state.
pub fn map<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    map_with(items, threads, || (), |(), i, t| f(i, t))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order() {
        let items: Vec<usize> = (0..500).collect();
        let out = map(&items, 4, |_, &x| x * 2);
        assert_eq!(out, items.iter().map(|&x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn single_thread_matches_parallel() {
        let items: Vec<u64> = (0..100).collect();
        let seq = map(&items, 1, |i, &x| x.wrapping_mul(i as u64 + 1));
        let par = map(&items, 8, |i, &x| x.wrapping_mul(i as u64 + 1));
        assert_eq!(seq, par);
    }

    #[test]
    fn worker_state_is_reused_not_shared() {
        // Each worker counts how many items it saw; totals must add up.
        use std::sync::atomic::AtomicUsize;
        let total = AtomicUsize::new(0);
        let items: Vec<u32> = (0..200).collect();
        let out = map_with(
            &items,
            3,
            || 0usize,
            |count, _, &x| {
                *count += 1;
                total.fetch_add(1, Ordering::Relaxed);
                x
            },
        );
        assert_eq!(out, items);
        assert_eq!(total.load(Ordering::Relaxed), 200);
    }

    #[test]
    fn empty_and_tiny_inputs() {
        let empty: Vec<u8> = Vec::new();
        assert!(map(&empty, 4, |_, &x| x).is_empty());
        assert_eq!(map(&[9u8], 4, |_, &x| x + 1), vec![10]);
    }

    #[test]
    fn oversubscribed_thread_count_is_clamped() {
        let items = [1, 2, 3];
        assert_eq!(map(&items, 64, |_, &x| x), vec![1, 2, 3]);
    }
}
