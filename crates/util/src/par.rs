//! A minimal data-parallel executor over scoped threads.
//!
//! The batched slicing engine fans independent queries out across cores.
//! `rayon` would be the natural dependency, but the build must work without
//! network access, so this module provides the one primitive the engine
//! needs: an order-preserving parallel map with per-worker state, built on
//! `std::thread::scope` and per-worker block deques with work stealing.
//!
//! Query costs are wildly skewed (a context-sensitive thin slice can cost
//! 30× a context-insensitive one), so a static partition idles workers.
//! Each worker owns a contiguous block of item indices packed into one
//! `AtomicU64` as `(next, end)` halves; the owner claims items from the
//! front one at a time, and a worker whose block is empty steals the back
//! half of the fullest remaining block. Every claim is a CAS on the one
//! word, so there are no locks and no idle spinning while work remains.
//!
//! Results are returned in input order regardless of completion order, so
//! parallel callers observe exactly the sequential output.
//!
//! # Examples
//!
//! ```
//! use thinslice_util::par;
//!
//! let squares = par::map_with(&[1u64, 2, 3, 4], 2, || (), |(), _i, x| x * x);
//! assert_eq!(squares, vec![1, 4, 9, 16]);
//! ```

use std::sync::atomic::{AtomicU64, Ordering};

/// Environment variable overriding [`default_threads`] (and therefore every
/// CLI and benchmark default). Must be a positive integer when set; an
/// unparsable or zero value is rejected with a diagnostic rather than
/// silently ignored (see [`try_default_threads`]).
pub const THREADS_ENV: &str = "THINSLICE_THREADS";

/// Validates one `THINSLICE_THREADS` value: a positive (non-zero) integer,
/// surrounding whitespace tolerated.
///
/// # Examples
///
/// ```
/// use thinslice_util::par::parse_threads_env;
///
/// assert_eq!(parse_threads_env(" 4 "), Ok(4));
/// assert!(parse_threads_env("0").is_err());
/// assert!(parse_threads_env("two").is_err());
/// ```
pub fn parse_threads_env(raw: &str) -> Result<usize, String> {
    let token = raw.trim();
    match token.parse::<usize>() {
        Ok(0) => Err(format!("{THREADS_ENV} must be at least 1, got \"{token}\"")),
        Ok(n) => Ok(n),
        Err(_) => Err(format!(
            "{THREADS_ENV} must be a positive integer, got \"{token}\""
        )),
    }
}

/// The number of worker threads to use by default: the `THINSLICE_THREADS`
/// environment override when set, otherwise the machine's available
/// parallelism (1 when it cannot be determined).
///
/// A set-but-invalid override is an error, so a typo degrades loudly
/// instead of silently running on a different thread count than asked.
pub fn try_default_threads() -> Result<usize, String> {
    match std::env::var(THREADS_ENV) {
        Ok(v) => parse_threads_env(&v),
        Err(std::env::VarError::NotUnicode(_)) => Err(format!(
            "{THREADS_ENV} must be a positive integer, got non-unicode bytes"
        )),
        Err(std::env::VarError::NotPresent) => Ok(std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)),
    }
}

/// [`try_default_threads`], panicking with its diagnostic on an invalid
/// `THINSLICE_THREADS`. Callers with a cleaner error channel (the CLI, the
/// server) should prefer [`try_default_threads`].
pub fn default_threads() -> usize {
    match try_default_threads() {
        Ok(n) => n,
        Err(e) => panic!("{e}"),
    }
}

/// [`default_threads`] capped at `batch` — CI containers report up to 128
/// CPUs, and spawning 128 workers for a 3-query batch costs more than it
/// saves. Never returns 0 (an empty batch still gets one thread).
pub fn default_threads_for(batch: usize) -> usize {
    default_threads().clamp(1, batch.max(1))
}

/// A worker's range of pending item indices, packed as `next << 32 | end`
/// so both halves move under a single CAS.
fn pack(next: u32, end: u32) -> u64 {
    (u64::from(next) << 32) | u64::from(end)
}

fn unpack(v: u64) -> (u32, u32) {
    ((v >> 32) as u32, v as u32)
}

/// Maps `f` over `items` on up to `threads` worker threads, giving each
/// worker a private scratch state built by `init`; returns the results in
/// input order.
///
/// With `threads <= 1` (or one item) everything runs on the calling thread
/// with no spawning, so single-threaded behaviour is exactly a `for` loop —
/// useful both for determinism tests and for machines without spare cores.
pub fn map_with<T, R, S, I, F>(items: &[T], threads: usize, init: I, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize, &T) -> R + Sync,
{
    let threads = threads.clamp(1, items.len().max(1));
    if threads == 1 {
        let mut scratch = init();
        return items
            .iter()
            .enumerate()
            .map(|(i, t)| f(&mut scratch, i, t))
            .collect();
    }
    assert!(
        items.len() <= u32::MAX as usize,
        "batch exceeds u32 item indices"
    );

    // Initial partition: contiguous blocks, remainder spread over the
    // first workers so block sizes differ by at most one.
    let deques: Vec<AtomicU64> = {
        let per = items.len() / threads;
        let extra = items.len() % threads;
        let mut start = 0u32;
        (0..threads)
            .map(|w| {
                let len = (per + usize::from(w < extra)) as u32;
                let d = AtomicU64::new(pack(start, start + len));
                start += len;
                d
            })
            .collect()
    };

    let claim_own = |w: usize| -> Option<usize> {
        let d = &deques[w];
        loop {
            let cur = d.load(Ordering::Acquire);
            let (next, end) = unpack(cur);
            if next >= end {
                return None;
            }
            if d.compare_exchange_weak(
                cur,
                pack(next + 1, end),
                Ordering::AcqRel,
                Ordering::Relaxed,
            )
            .is_ok()
            {
                return Some(next as usize);
            }
            std::hint::spin_loop();
        }
    };
    // Steal the back half of the fullest block into worker `w`'s (empty)
    // deque. Returns false only when every deque was observed empty — at
    // which point all remaining items are already claimed by their owners,
    // so exiting early costs at most some tail parallelism, never an item.
    let steal_into = |w: usize| -> bool {
        loop {
            let mut victim = None;
            let mut best = 0u32;
            for (v, d) in deques.iter().enumerate() {
                if v == w {
                    continue;
                }
                let (next, end) = unpack(d.load(Ordering::Acquire));
                if end - next > best {
                    best = end - next;
                    victim = Some(v);
                }
            }
            let Some(v) = victim else { return false };
            let d = &deques[v];
            let cur = d.load(Ordering::Acquire);
            let (next, end) = unpack(cur);
            if next >= end {
                continue; // raced to empty; rescan
            }
            let mid = next + (end - next).div_ceil(2);
            if d.compare_exchange(cur, pack(next, mid), Ordering::AcqRel, Ordering::Relaxed)
                .is_ok()
            {
                deques[w].store(pack(mid, end), Ordering::Release);
                return true;
            }
            std::hint::spin_loop();
        }
    };

    let mut slots: Vec<Option<R>> = std::thread::scope(|scope| {
        let workers: Vec<_> = (0..threads)
            .map(|w| {
                let (claim_own, steal_into) = (&claim_own, &steal_into);
                let (init, f) = (&init, &f);
                scope.spawn(move || {
                    let mut scratch = init();
                    let mut produced = Vec::new();
                    loop {
                        match claim_own(w) {
                            Some(i) => produced.push((i, f(&mut scratch, i, &items[i]))),
                            None => {
                                if !steal_into(w) {
                                    break;
                                }
                            }
                        }
                    }
                    produced
                })
            })
            .collect();
        let mut slots: Vec<Option<R>> = (0..items.len()).map(|_| None).collect();
        for w in workers {
            // A panic in a worker propagates here, matching sequential
            // behaviour (the panic surfaces to the caller).
            for (i, r) in w.join().expect("parallel map worker panicked") {
                slots[i] = Some(r);
            }
        }
        slots
    });
    slots
        .iter_mut()
        .map(|s| s.take().expect("every index produced"))
        .collect()
}

/// [`map_with`] without per-worker state.
pub fn map<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    map_with(items, threads, || (), |(), i, t| f(i, t))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn preserves_input_order() {
        let items: Vec<usize> = (0..500).collect();
        let out = map(&items, 4, |_, &x| x * 2);
        assert_eq!(out, items.iter().map(|&x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn single_thread_matches_parallel() {
        let items: Vec<u64> = (0..100).collect();
        let seq = map(&items, 1, |i, &x| x.wrapping_mul(i as u64 + 1));
        let par = map(&items, 8, |i, &x| x.wrapping_mul(i as u64 + 1));
        assert_eq!(seq, par);
    }

    #[test]
    fn worker_state_is_reused_not_shared() {
        // Each worker counts how many items it saw; totals must add up.
        let total = AtomicUsize::new(0);
        let items: Vec<u32> = (0..200).collect();
        let out = map_with(
            &items,
            3,
            || 0usize,
            |count, _, &x| {
                *count += 1;
                total.fetch_add(1, Ordering::Relaxed);
                x
            },
        );
        assert_eq!(out, items);
        assert_eq!(total.load(Ordering::Relaxed), 200);
    }

    #[test]
    fn empty_and_tiny_inputs() {
        let empty: Vec<u8> = Vec::new();
        assert!(map(&empty, 4, |_, &x| x).is_empty());
        assert_eq!(map(&[9u8], 4, |_, &x| x + 1), vec![10]);
    }

    #[test]
    fn oversubscribed_thread_count_is_clamped() {
        let items = [1, 2, 3];
        assert_eq!(map(&items, 64, |_, &x| x), vec![1, 2, 3]);
    }

    #[test]
    fn skewed_workloads_complete_every_item() {
        // One expensive item per block forces stealing; every result must
        // still land in its slot exactly once.
        let items: Vec<u64> = (0..137).collect();
        let out = map(&items, 4, |_, &x| {
            let spin = if x % 37 == 0 { 20_000 } else { 10 };
            let mut acc = x;
            for i in 0..spin {
                acc = std::hint::black_box(acc.wrapping_mul(31).wrapping_add(i));
            }
            (acc, x).1
        });
        assert_eq!(out, items);
    }

    #[test]
    fn threads_env_values_are_validated_not_ignored() {
        assert_eq!(parse_threads_env("1"), Ok(1));
        assert_eq!(parse_threads_env("  16\n"), Ok(16));
        for bad in ["0", "", "  ", "two", "-3", "1.5", "4x", "0x4"] {
            let err = parse_threads_env(bad).unwrap_err();
            assert!(
                err.contains(THREADS_ENV) && err.contains(bad.trim()),
                "diagnostic must name the variable and the offending \
                 token: {err:?}"
            );
        }
    }

    #[test]
    fn default_threads_for_caps_at_batch_size() {
        assert_eq!(default_threads_for(0), 1);
        assert_eq!(default_threads_for(1), 1);
        assert!(default_threads_for(usize::MAX) >= 1);
        assert!(default_threads_for(2) <= 2);
    }
}
