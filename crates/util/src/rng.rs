//! A tiny deterministic pseudo-random generator for tests and the program
//! generator.
//!
//! The suite's scalability generator and the randomized property tests need
//! reproducible pseudo-randomness, not cryptographic quality. This is a
//! dependency-free splitmix64/xorshift combination (the `rand` crate is
//! intentionally not pulled in: the build must work without network
//! access). The same seed always yields the same stream, on every platform.
//!
//! # Examples
//!
//! ```
//! use thinslice_util::SmallRng;
//!
//! let mut a = SmallRng::new(7);
//! let mut b = SmallRng::new(7);
//! assert_eq!(a.next_u64(), b.next_u64());
//! let x = a.range_usize(10, 20);
//! assert!((10..20).contains(&x));
//! ```

/// A small deterministic PRNG (xorshift64* seeded through splitmix64).
#[derive(Debug, Clone)]
pub struct SmallRng {
    state: u64,
}

impl SmallRng {
    /// Creates a generator from `seed`; distinct seeds give distinct
    /// streams, and any seed (including 0) is valid.
    pub fn new(seed: u64) -> Self {
        // One splitmix64 step decorrelates adjacent seeds and avoids the
        // all-zero state xorshift cannot leave.
        let mut z = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^= z >> 31;
        Self { state: z | 1 }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// A uniform `usize` in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn range_usize(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi, "empty range [{lo}, {hi})");
        let span = (hi - lo) as u64;
        lo + (self.next_u64() % span) as usize
    }

    /// A uniform `i64` in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn range_i64(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo < hi, "empty range [{lo}, {hi})");
        let span = hi.wrapping_sub(lo) as u64;
        lo.wrapping_add((self.next_u64() % span) as i64)
    }

    /// A uniform boolean.
    pub fn bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    /// A uniform choice from a non-empty slice.
    ///
    /// # Panics
    ///
    /// Panics if `items` is empty.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.range_usize(0, items.len())]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::new(42);
        let mut b = SmallRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::new(43);
        assert_ne!(SmallRng::new(42).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = SmallRng::new(0);
        for _ in 0..1000 {
            let u = r.range_usize(3, 9);
            assert!((3..9).contains(&u));
            let i = r.range_i64(-50, 50);
            assert!((-50..50).contains(&i));
        }
    }

    #[test]
    fn bool_hits_both_values() {
        let mut r = SmallRng::new(1);
        let heads = (0..256).filter(|_| r.bool()).count();
        assert!(
            heads > 64 && heads < 192,
            "suspiciously biased: {heads}/256"
        );
    }

    #[test]
    fn choose_covers_all_items() {
        let mut r = SmallRng::new(5);
        let items = [10, 20, 30];
        let mut seen = [false; 3];
        for _ in 0..100 {
            let v = *r.choose(&items);
            seen[items.iter().position(|&i| i == v).unwrap()] = true;
        }
        assert_eq!(seen, [true, true, true]);
    }
}
