//! The one run-wide context bundle every pipeline stage takes.
//!
//! PRs 1–3 each threaded a new cross-cutting concern (telemetry, resource
//! governance) through the pipeline as a *separate* parameter, so every
//! layer grew `{plain, _telemetry, _governed}` entry-point triplets. A
//! [`RunCtx`] collapses them: it bundles the [`Telemetry`] handle and the
//! resource [`Budget`] into one value that is threaded as a single
//! parameter through compilation, the points-to solve, dependence-graph
//! construction, every slicer, expansion and the interpreter.
//!
//! The default context ([`RunCtx::disabled`]) is cheap — a disabled
//! telemetry handle records nothing and an unlimited budget meters one
//! predictable branch per work item — so stages take `&RunCtx`
//! unconditionally and plain runs stay byte-identical to the pre-context
//! code paths.
//!
//! # Examples
//!
//! ```
//! use std::time::Duration;
//! use thinslice_util::{Budget, RunCtx, Telemetry};
//!
//! let plain = RunCtx::disabled();
//! assert!(!plain.is_governed() && !plain.telemetry().is_enabled());
//!
//! let ctx = RunCtx::disabled()
//!     .with_telemetry(Telemetry::enabled())
//!     .with_budget(Budget::unlimited().with_deadline(Duration::from_secs(1)));
//! assert!(ctx.is_governed() && ctx.telemetry().is_enabled());
//! ```

use crate::govern::{Budget, Meter};
use crate::telemetry::{Span, Telemetry};

/// The run-wide context: telemetry sink plus resource budget, threaded as
/// one parameter through every pipeline stage.
#[derive(Debug, Clone, Default)]
pub struct RunCtx {
    telemetry: Telemetry,
    budget: Budget,
}

impl RunCtx {
    /// The cheap default: disabled telemetry, unlimited budget. Stages
    /// running under it behave exactly like their pre-context plain
    /// versions.
    pub fn disabled() -> RunCtx {
        RunCtx::default()
    }

    /// A context from explicit parts.
    pub fn new(telemetry: Telemetry, budget: Budget) -> RunCtx {
        RunCtx { telemetry, budget }
    }

    /// Replaces the telemetry handle.
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> RunCtx {
        self.telemetry = telemetry;
        self
    }

    /// Replaces the resource budget.
    pub fn with_budget(mut self, budget: Budget) -> RunCtx {
        self.budget = budget;
        self
    }

    /// The telemetry handle (disabled handles record nothing).
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// The resource budget stages arm their meters from.
    pub fn budget(&self) -> &Budget {
        &self.budget
    }

    /// Whether any resource limit is set. Stages use this to decide
    /// between their fixpoint and metered variants, so ungoverned runs
    /// never pay for truncation bookkeeping.
    pub fn is_governed(&self) -> bool {
        !self.budget.is_unlimited()
    }

    /// Arms a fresh [`Meter`] from the budget (deadline measured from now).
    pub fn meter(&self) -> Meter {
        self.budget.meter()
    }

    /// Opens a telemetry span; shorthand for `ctx.telemetry().span(name)`.
    pub fn span(&self, name: &str) -> Span<'_> {
        self.telemetry.span(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_context_is_plain() {
        let ctx = RunCtx::disabled();
        assert!(!ctx.is_governed());
        assert!(!ctx.telemetry().is_enabled());
        assert!(ctx.budget().is_unlimited());
        assert!(ctx.meter().tick());
    }

    #[test]
    fn budget_makes_it_governed() {
        let ctx = RunCtx::disabled().with_budget(Budget::unlimited().with_step_limit(1));
        assert!(ctx.is_governed());
        let mut meter = ctx.meter();
        assert!(meter.tick());
        assert!(!meter.tick());
    }

    #[test]
    fn telemetry_flows_through() {
        let ctx = RunCtx::disabled().with_telemetry(Telemetry::enabled());
        {
            let mut span = ctx.span("test.span");
            span.add("test.counter", 3);
        }
        let report = ctx.telemetry().report();
        assert!(report.spans.iter().any(|s| s.name == "test.span"));
    }
}
