//! Hand-rolled telemetry: tracing spans, a metrics registry, and
//! machine-readable run reports.
//!
//! External observability crates (`tracing`, `metrics`, `criterion`) are
//! unavailable offline, so — like [`crate::par`] and the `fx` hashes — this
//! module re-implements the small slice of them the pipeline needs:
//!
//! * [`Telemetry`] — a cheaply clonable handle threaded through the analysis
//!   stages. A *disabled* handle (the default) carries no allocation and
//!   every operation is a branch on `None`, so instrumented code paths stay
//!   bit-identical to uninstrumented ones.
//! * [`Span`] — an RAII guard measuring wall-clock time for one named stage
//!   (`tel.span("pta.solve")`), with nesting tracked via a span stack and
//!   per-span counters attached through [`Span::add`].
//! * [`MetricsRegistry`] — named monotonic counters, last-write gauges and
//!   sample-keeping [`Histogram`]s, plus a list of structured
//!   [`TelemetryEvent`]s (e.g. budget exhaustions from [`crate::govern`]).
//! * [`RunReport`] — an owned snapshot of everything above with a hand-rolled
//!   JSON writer *and* parser (no `serde`), so reports round-trip through
//!   files and external tooling.
//!
//! # Examples
//!
//! ```
//! use thinslice_util::telemetry::Telemetry;
//!
//! let tel = Telemetry::enabled();
//! {
//!     let mut span = tel.span("pta.solve");
//!     span.add("worklist.pops", 42);
//! }
//! tel.count("sdg.edges", 7);
//! tel.record("batch.query_us", 120.0);
//! let report = tel.report();
//! assert_eq!(report.counters["sdg.edges"], 7);
//! let json = report.to_json();
//! assert_eq!(thinslice_util::telemetry::RunReport::from_json(&json).unwrap(), report);
//! ```

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Identifies the JSON schema emitted by [`RunReport::to_json`].
pub const RUN_REPORT_SCHEMA: &str = "thinslice.run_report.v1";

// ---------------------------------------------------------------------------
// Telemetry handle
// ---------------------------------------------------------------------------

/// A shareable telemetry handle.
///
/// Disabled handles ([`Telemetry::disabled`], also [`Default`]) make every
/// operation a no-op; enabled handles ([`Telemetry::enabled`]) share one
/// trace + registry across clones, so batch workers on different threads
/// aggregate into the same report.
#[derive(Clone, Debug, Default)]
pub struct Telemetry {
    inner: Option<Arc<Inner>>,
}

#[derive(Debug)]
struct Inner {
    epoch: Instant,
    trace: Mutex<Trace>,
    metrics: Mutex<MetricsRegistry>,
}

#[derive(Debug, Default)]
struct Trace {
    spans: Vec<SpanRecord>,
    /// Indices into `spans` of the currently open spans, innermost last.
    stack: Vec<usize>,
}

impl Telemetry {
    /// A handle where every operation is a no-op.
    pub fn disabled() -> Self {
        Telemetry { inner: None }
    }

    /// A live handle recording spans and metrics from now on.
    pub fn enabled() -> Self {
        Telemetry {
            inner: Some(Arc::new(Inner {
                epoch: Instant::now(),
                trace: Mutex::new(Trace::default()),
                metrics: Mutex::new(MetricsRegistry::default()),
            })),
        }
    }

    /// Whether this handle records anything. Use to gate work whose only
    /// purpose is producing telemetry (e.g. post-hoc edge counting).
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Opens a named span; timing stops when the returned guard drops.
    ///
    /// Spans opened while another span guard is live nest under it (their
    /// recorded `depth` is one greater). Span guards must be dropped in
    /// reverse order of creation — the natural shape of scoped stage code.
    pub fn span(&self, name: &str) -> Span<'_> {
        let Some(inner) = self.inner.as_ref() else {
            return Span {
                tel: self,
                idx: usize::MAX,
                start: None,
            };
        };
        let start = Instant::now();
        let start_us = start.duration_since(inner.epoch).as_micros() as u64;
        let mut trace = inner.trace.lock().unwrap();
        let depth = trace.stack.len() as u32;
        let idx = trace.spans.len();
        trace.spans.push(SpanRecord {
            name: name.to_string(),
            depth,
            start_us,
            dur_us: 0,
            counters: Vec::new(),
        });
        trace.stack.push(idx);
        Span {
            tel: self,
            idx,
            start: Some(start),
        }
    }

    /// Adds `n` to the named monotonic counter. `n == 0` is dropped so
    /// reports only list metrics that actually fired.
    pub fn count(&self, name: &str, n: u64) {
        let Some(inner) = self.inner.as_ref() else {
            return;
        };
        if n == 0 {
            return;
        }
        inner.metrics.lock().unwrap().count(name, n);
    }

    /// Sets the named gauge to `v` (last write wins).
    pub fn gauge(&self, name: &str, v: u64) {
        let Some(inner) = self.inner.as_ref() else {
            return;
        };
        inner.metrics.lock().unwrap().gauge(name, v);
    }

    /// Records one sample into the named histogram.
    pub fn record(&self, name: &str, v: f64) {
        let Some(inner) = self.inner.as_ref() else {
            return;
        };
        inner.metrics.lock().unwrap().record(name, v);
    }

    /// Appends a structured event (e.g. a budget exhaustion).
    pub fn event(&self, name: &str, fields: &[(&str, String)]) {
        let Some(inner) = self.inner.as_ref() else {
            return;
        };
        inner.metrics.lock().unwrap().push_event(TelemetryEvent {
            name: name.to_string(),
            fields: fields
                .iter()
                .map(|(k, v)| (k.to_string(), v.clone()))
                .collect(),
        });
    }

    /// Summarises the named histogram, if any samples were recorded.
    pub fn histogram_summary(&self, name: &str) -> Option<HistogramSummary> {
        let inner = self.inner.as_ref()?;
        let metrics = inner.metrics.lock().unwrap();
        metrics.histograms.get(name).map(Histogram::summary)
    }

    /// Snapshots everything recorded so far into an owned [`RunReport`].
    ///
    /// Open spans are included with their duration measured up to now.
    pub fn report(&self) -> RunReport {
        let Some(inner) = self.inner.as_ref() else {
            return RunReport::default();
        };
        let now = Instant::now();
        let trace = inner.trace.lock().unwrap();
        let mut spans = trace.spans.clone();
        for &open in &trace.stack {
            let s = &mut spans[open];
            s.dur_us = now
                .duration_since(inner.epoch)
                .as_micros()
                .saturating_sub(u128::from(s.start_us)) as u64;
        }
        drop(trace);
        let metrics = inner.metrics.lock().unwrap();
        RunReport {
            spans,
            counters: metrics.counters.clone(),
            gauges: metrics.gauges.clone(),
            histograms: metrics
                .histograms
                .iter()
                .map(|(k, h)| (k.clone(), h.summary()))
                .collect(),
            events: metrics.events.clone(),
        }
    }
}

// ---------------------------------------------------------------------------
// Spans
// ---------------------------------------------------------------------------

/// One completed (or still-open) span in the trace.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpanRecord {
    /// Dotted stage name, e.g. `"pta.solve"`.
    pub name: String,
    /// Nesting depth: 0 for top-level spans.
    pub depth: u32,
    /// Start offset from the handle's creation, in microseconds.
    pub start_us: u64,
    /// Wall-clock duration in microseconds.
    pub dur_us: u64,
    /// Per-span counters attached via [`Span::add`], in insertion order.
    pub counters: Vec<(String, u64)>,
}

/// RAII guard for a span opened by [`Telemetry::span`].
///
/// Dropping the guard closes the span and records its duration.
#[must_use = "a span measures the scope it lives in; bind it to a variable"]
pub struct Span<'t> {
    tel: &'t Telemetry,
    idx: usize,
    start: Option<Instant>,
}

impl Span<'_> {
    /// Adds `n` to a counter attached to this span (zero increments are
    /// dropped). Counters with the same name accumulate.
    pub fn add(&mut self, name: &str, n: u64) {
        let (Some(inner), Some(_)) = (self.tel.inner.as_ref(), self.start) else {
            return;
        };
        if n == 0 {
            return;
        }
        let mut trace = inner.trace.lock().unwrap();
        let counters = &mut trace.spans[self.idx].counters;
        if let Some(slot) = counters.iter_mut().find(|(k, _)| k == name) {
            slot.1 += n;
        } else {
            counters.push((name.to_string(), n));
        }
    }
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        let (Some(inner), Some(start)) = (self.tel.inner.as_ref(), self.start) else {
            return;
        };
        let dur_us = start.elapsed().as_micros() as u64;
        let mut trace = inner.trace.lock().unwrap();
        trace.spans[self.idx].dur_us = dur_us;
        // Close this span on the stack; tolerate out-of-order drops by
        // removing wherever it sits.
        if let Some(pos) = trace.stack.iter().rposition(|&i| i == self.idx) {
            trace.stack.remove(pos);
        }
    }
}

// ---------------------------------------------------------------------------
// Metrics
// ---------------------------------------------------------------------------

/// Named counters, gauges, histograms and events.
///
/// [`Telemetry`] owns one behind a mutex; the registry is also usable
/// standalone (the bench harness aggregates into a private one).
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, u64>,
    histograms: BTreeMap<String, Histogram>,
    events: Vec<TelemetryEvent>,
}

impl MetricsRegistry {
    /// Adds `n` to a monotonic counter.
    pub fn count(&mut self, name: &str, n: u64) {
        *self.counters.entry(name.to_string()).or_insert(0) += n;
    }

    /// Sets a gauge (last write wins).
    pub fn gauge(&mut self, name: &str, v: u64) {
        self.gauges.insert(name.to_string(), v);
    }

    /// Records one histogram sample.
    pub fn record(&mut self, name: &str, v: f64) {
        self.histograms
            .entry(name.to_string())
            .or_default()
            .record(v);
    }

    /// Appends an event.
    pub fn push_event(&mut self, e: TelemetryEvent) {
        self.events.push(e);
    }

    /// Read access to a histogram, if it has samples.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }
}

/// A structured event with ordered string fields.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TelemetryEvent {
    /// Dotted event name, e.g. `"govern.exhausted"`.
    pub name: String,
    /// Ordered `(key, value)` pairs.
    pub fields: Vec<(String, String)>,
}

impl TelemetryEvent {
    /// Looks up a field value by key.
    pub fn field(&self, key: &str) -> Option<&str> {
        self.fields
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

/// A histogram that keeps its raw samples.
///
/// Sample counts in this pipeline are small (one per query / bench round),
/// so exact percentiles beat bucketing. This is the single source of truth
/// for percentile math: the bench harness and the batch footer both read
/// their medians/percentiles from here.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Histogram {
    samples: Vec<f64>,
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one sample.
    pub fn record(&mut self, v: f64) {
        self.samples.push(v);
    }

    /// Number of samples.
    pub fn count(&self) -> usize {
        self.samples.len()
    }

    /// Sum of all samples.
    pub fn sum(&self) -> f64 {
        self.samples.iter().sum()
    }

    /// Largest sample (0.0 when empty).
    pub fn max(&self) -> f64 {
        self.samples.iter().cloned().fold(0.0, f64::max)
    }

    /// Nearest-rank percentile: the smallest sample ≥ `p` percent of the
    /// distribution (0.0 when empty). `percentile(50.0)` is the median.
    pub fn percentile(&self, p: f64) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        let mut sorted = self.samples.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
        sorted[rank.clamp(1, sorted.len()) - 1]
    }

    /// The median sample (nearest-rank).
    pub fn median(&self) -> f64 {
        self.percentile(50.0)
    }

    /// Folds another histogram's samples into this one. Workers keep
    /// private histograms on their own hot paths; the aggregator merges
    /// them before computing quantiles, so percentile math always runs
    /// over the union of samples rather than an average of per-worker
    /// percentiles (which would be statistically meaningless).
    pub fn merge(&mut self, other: &Histogram) {
        self.samples.extend_from_slice(&other.samples);
    }

    /// Snapshot summary with the percentiles reports care about.
    pub fn summary(&self) -> HistogramSummary {
        HistogramSummary {
            count: self.count() as u64,
            sum: self.sum(),
            p50: self.percentile(50.0),
            p95: self.percentile(95.0),
            max: self.max(),
        }
    }
}

/// Summary statistics of one [`Histogram`].
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct HistogramSummary {
    /// Number of samples.
    pub count: u64,
    /// Sum of samples.
    pub sum: f64,
    /// Median (nearest-rank).
    pub p50: f64,
    /// 95th percentile (nearest-rank).
    pub p95: f64,
    /// Largest sample.
    pub max: f64,
}

// ---------------------------------------------------------------------------
// Flight recorder
// ---------------------------------------------------------------------------

/// Longest label a [`FlightEvent`] keeps inline. Longer labels are
/// truncated (at a UTF-8 boundary) rather than heap-allocated, so the
/// per-event cost stays bounded regardless of what callers pass in.
pub const FLIGHT_LABEL_BYTES: usize = 24;

/// What happened, for one [`FlightEvent`].
///
/// The variants mirror the daemon's decision points: admission control,
/// the degradation ladder, pool lifecycle, budget exhaustion, injected
/// faults and the slow-query log. `Copy` and field-free so recording one
/// never allocates.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum FlightKind {
    /// A request was admitted at full fidelity.
    RequestAdmitted,
    /// A request was degraded (e.g. context-sensitive → insensitive).
    RequestDegraded,
    /// A request was shed (truncated or rejected) under load.
    RequestShed,
    /// A session finished building in the pool.
    SessionBuilt,
    /// A session was evicted from the pool.
    SessionEvicted,
    /// A session was quarantined after a panic.
    SessionQuarantined,
    /// A resident session was incrementally updated to edited sources.
    SessionUpdated,
    /// A query exhausted its step budget or deadline.
    BudgetExhausted,
    /// A configured fault was injected.
    FaultInjected,
    /// A request exceeded the slow-query threshold.
    SlowQuery,
}

impl FlightKind {
    /// Stable lower-snake name used in JSON renderings of the ring.
    pub fn as_str(self) -> &'static str {
        match self {
            FlightKind::RequestAdmitted => "request_admitted",
            FlightKind::RequestDegraded => "request_degraded",
            FlightKind::RequestShed => "request_shed",
            FlightKind::SessionBuilt => "session_built",
            FlightKind::SessionEvicted => "session_evicted",
            FlightKind::SessionQuarantined => "session_quarantined",
            FlightKind::SessionUpdated => "session_updated",
            FlightKind::BudgetExhausted => "budget_exhausted",
            FlightKind::FaultInjected => "fault_injected",
            FlightKind::SlowQuery => "slow_query",
        }
    }
}

/// One entry in the [`FlightRecorder`] ring.
///
/// Fixed-size and `Copy`: the numeric payloads are two bare `u64`s whose
/// meaning depends on [`FlightKind`] (documented at each recording site),
/// and the label is an inline, truncated byte array — no heap allocation
/// per event, ever.
#[derive(Clone, Copy, Debug)]
pub struct FlightEvent {
    /// Monotonic sequence number, assigned at record time. Never reused;
    /// gaps in a snapshot mean the ring wrapped and overwrote entries.
    pub seq: u64,
    /// What happened.
    pub kind: FlightKind,
    /// Primary numeric payload (kind-dependent, e.g. latency in µs).
    pub a: u64,
    /// Secondary numeric payload (kind-dependent, e.g. resident bytes).
    pub b: u64,
    label: [u8; FLIGHT_LABEL_BYTES],
    label_len: u8,
}

impl FlightEvent {
    const EMPTY: FlightEvent = FlightEvent {
        seq: 0,
        kind: FlightKind::RequestAdmitted,
        a: 0,
        b: 0,
        label: [0; FLIGHT_LABEL_BYTES],
        label_len: 0,
    };

    /// The (possibly truncated) label recorded with the event, typically
    /// a client name, program hash or fault site.
    pub fn label(&self) -> &str {
        // Truncation in `FlightRecorder::record` lands on a char
        // boundary, so this is always valid UTF-8.
        std::str::from_utf8(&self.label[..self.label_len as usize]).unwrap_or("")
    }
}

/// An always-on, fixed-capacity ring buffer of [`FlightEvent`]s.
///
/// The ring is allocated once at construction; recording overwrites the
/// slot at `seq % capacity` and never allocates, so the recorder can stay
/// on the daemon's hot path permanently. Sequence numbers are assigned
/// under the same lock that writes the slot, so a [`snapshot`] is always
/// a contiguous, strictly-ordered suffix of everything ever recorded —
/// the oldest `total - capacity` events are the only ones lost.
///
/// [`snapshot`]: FlightRecorder::snapshot
///
/// ```
/// use thinslice_util::telemetry::{FlightKind, FlightRecorder};
///
/// let rec = FlightRecorder::new(2);
/// rec.record(FlightKind::SessionBuilt, "abc", 1, 0);
/// rec.record(FlightKind::RequestAdmitted, "tenant-a", 2, 0);
/// rec.record(FlightKind::RequestShed, "tenant-b", 3, 0); // overwrites seq 0
/// let snap = rec.snapshot();
/// assert_eq!(snap.len(), 2);
/// assert_eq!(snap[0].seq, 1);
/// assert_eq!(snap[1].label(), "tenant-b");
/// assert_eq!(rec.recorded(), 3);
/// ```
#[derive(Debug)]
pub struct FlightRecorder {
    inner: Mutex<FlightRing>,
}

#[derive(Debug)]
struct FlightRing {
    /// Next sequence number to assign == total events ever recorded.
    next_seq: u64,
    slots: Box<[FlightEvent]>,
}

impl FlightRecorder {
    /// A recorder holding at most `capacity` events (clamped to ≥ 1).
    /// This is the only allocation the recorder ever performs.
    pub fn new(capacity: usize) -> Self {
        let cap = capacity.max(1);
        FlightRecorder {
            inner: Mutex::new(FlightRing {
                next_seq: 0,
                slots: vec![FlightEvent::EMPTY; cap].into_boxed_slice(),
            }),
        }
    }

    /// The fixed ring capacity.
    pub fn capacity(&self) -> usize {
        self.inner.lock().unwrap().slots.len()
    }

    /// Records one event and returns its sequence number. Labels longer
    /// than [`FLIGHT_LABEL_BYTES`] are truncated at a char boundary;
    /// nothing is allocated. Safe to call from any number of threads —
    /// sequence numbers are unique and slot writes are ordered by them.
    pub fn record(&self, kind: FlightKind, label: &str, a: u64, b: u64) -> u64 {
        let mut cut = label.len().min(FLIGHT_LABEL_BYTES);
        while !label.is_char_boundary(cut) {
            cut -= 1;
        }
        let mut ring = self.inner.lock().unwrap();
        let seq = ring.next_seq;
        ring.next_seq += 1;
        let idx = (seq % ring.slots.len() as u64) as usize;
        let slot = &mut ring.slots[idx];
        slot.seq = seq;
        slot.kind = kind;
        slot.a = a;
        slot.b = b;
        slot.label[..cut].copy_from_slice(&label.as_bytes()[..cut]);
        slot.label_len = cut as u8;
        seq
    }

    /// Total events ever recorded (not just those still resident).
    pub fn recorded(&self) -> u64 {
        self.inner.lock().unwrap().next_seq
    }

    /// All live events, oldest first, strictly ordered by `seq`.
    pub fn snapshot(&self) -> Vec<FlightEvent> {
        self.tail(usize::MAX)
    }

    /// The newest `n` live events, oldest first.
    pub fn tail(&self, n: usize) -> Vec<FlightEvent> {
        let ring = self.inner.lock().unwrap();
        let cap = ring.slots.len() as u64;
        let live = ring.next_seq.min(cap);
        let take = live.min(n as u64);
        let mut out = Vec::with_capacity(take as usize);
        for seq in (ring.next_seq - take)..ring.next_seq {
            out.push(ring.slots[(seq % cap) as usize]);
        }
        out
    }
}

// ---------------------------------------------------------------------------
// RunReport + JSON
// ---------------------------------------------------------------------------

/// An owned snapshot of a run's telemetry, serialisable to/from JSON.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct RunReport {
    /// Completed spans in open order.
    pub spans: Vec<SpanRecord>,
    /// Monotonic counters (sorted by name).
    pub counters: BTreeMap<String, u64>,
    /// Gauges (sorted by name).
    pub gauges: BTreeMap<String, u64>,
    /// Histogram summaries (sorted by name).
    pub histograms: BTreeMap<String, HistogramSummary>,
    /// Structured events in record order.
    pub events: Vec<TelemetryEvent>,
}

impl RunReport {
    /// Serialises the report as deterministic JSON (map keys sorted,
    /// `f64`s printed with round-trip precision).
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::new();
        w.obj_open();
        w.key("schema");
        w.str(RUN_REPORT_SCHEMA);
        w.key("spans");
        w.arr_open();
        for s in &self.spans {
            w.obj_open();
            w.key("name");
            w.str(&s.name);
            w.key("depth");
            w.u64(u64::from(s.depth));
            w.key("start_us");
            w.u64(s.start_us);
            w.key("dur_us");
            w.u64(s.dur_us);
            w.key("counters");
            w.obj_open();
            for (k, v) in &s.counters {
                w.key(k);
                w.u64(*v);
            }
            w.obj_close();
            w.obj_close();
        }
        w.arr_close();
        w.key("counters");
        w.obj_open();
        for (k, v) in &self.counters {
            w.key(k);
            w.u64(*v);
        }
        w.obj_close();
        w.key("gauges");
        w.obj_open();
        for (k, v) in &self.gauges {
            w.key(k);
            w.u64(*v);
        }
        w.obj_close();
        w.key("histograms");
        w.obj_open();
        for (k, h) in &self.histograms {
            w.key(k);
            w.obj_open();
            w.key("count");
            w.u64(h.count);
            w.key("sum");
            w.f64(h.sum);
            w.key("p50");
            w.f64(h.p50);
            w.key("p95");
            w.f64(h.p95);
            w.key("max");
            w.f64(h.max);
            w.obj_close();
        }
        w.obj_close();
        w.key("events");
        w.arr_open();
        for e in &self.events {
            w.obj_open();
            w.key("name");
            w.str(&e.name);
            w.key("fields");
            w.obj_open();
            for (k, v) in &e.fields {
                w.key(k);
                w.str(v);
            }
            w.obj_close();
            w.obj_close();
        }
        w.arr_close();
        w.obj_close();
        w.finish()
    }

    /// Parses a report previously produced by [`RunReport::to_json`].
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed construct, or a schema
    /// mismatch.
    pub fn from_json(text: &str) -> Result<RunReport, String> {
        let value = Json::parse(text)?;
        let top = value.as_obj().ok_or("top level must be an object")?;
        let schema = get(top, "schema")?
            .as_str()
            .ok_or("\"schema\" must be a string")?;
        if schema != RUN_REPORT_SCHEMA {
            return Err(format!("unknown schema {schema:?}"));
        }
        let mut report = RunReport::default();
        for sv in get(top, "spans")?
            .as_arr()
            .ok_or("\"spans\" must be an array")?
        {
            let so = sv.as_obj().ok_or("span must be an object")?;
            report.spans.push(SpanRecord {
                name: get(so, "name")?.as_str().ok_or("span name")?.to_string(),
                depth: get(so, "depth")?.as_u64().ok_or("span depth")? as u32,
                start_us: get(so, "start_us")?.as_u64().ok_or("span start_us")?,
                dur_us: get(so, "dur_us")?.as_u64().ok_or("span dur_us")?,
                counters: get(so, "counters")?
                    .as_obj()
                    .ok_or("span counters")?
                    .iter()
                    .map(|(k, v)| v.as_u64().map(|n| (k.clone(), n)).ok_or("span counter"))
                    .collect::<Result<_, _>>()?,
            });
        }
        for (k, v) in get(top, "counters")?.as_obj().ok_or("\"counters\"")? {
            report
                .counters
                .insert(k.clone(), v.as_u64().ok_or("counter value")?);
        }
        for (k, v) in get(top, "gauges")?.as_obj().ok_or("\"gauges\"")? {
            report
                .gauges
                .insert(k.clone(), v.as_u64().ok_or("gauge value")?);
        }
        for (k, v) in get(top, "histograms")?.as_obj().ok_or("\"histograms\"")? {
            let h = v.as_obj().ok_or("histogram must be an object")?;
            report.histograms.insert(
                k.clone(),
                HistogramSummary {
                    count: get(h, "count")?.as_u64().ok_or("histogram count")?,
                    sum: get(h, "sum")?.as_f64().ok_or("histogram sum")?,
                    p50: get(h, "p50")?.as_f64().ok_or("histogram p50")?,
                    p95: get(h, "p95")?.as_f64().ok_or("histogram p95")?,
                    max: get(h, "max")?.as_f64().ok_or("histogram max")?,
                },
            );
        }
        for ev in get(top, "events")?.as_arr().ok_or("\"events\"")? {
            let eo = ev.as_obj().ok_or("event must be an object")?;
            report.events.push(TelemetryEvent {
                name: get(eo, "name")?.as_str().ok_or("event name")?.to_string(),
                fields: get(eo, "fields")?
                    .as_obj()
                    .ok_or("event fields")?
                    .iter()
                    .map(|(k, v)| {
                        v.as_str()
                            .map(|s| (k.clone(), s.to_string()))
                            .ok_or("event field")
                    })
                    .collect::<Result<_, _>>()?,
            });
        }
        Ok(report)
    }

    /// Renders an indented human-readable trace + metrics listing.
    pub fn render_text(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        if !self.spans.is_empty() {
            out.push_str("trace:\n");
            for s in &self.spans {
                let indent = "  ".repeat(s.depth as usize + 1);
                let _ = write!(
                    out,
                    "{indent}{:<28} {:>9.3} ms",
                    s.name,
                    s.dur_us as f64 / 1000.0
                );
                for (k, v) in &s.counters {
                    let _ = write!(out, "  {k}={v}");
                }
                out.push('\n');
            }
        }
        if !self.counters.is_empty() || !self.gauges.is_empty() || !self.histograms.is_empty() {
            out.push_str("metrics:\n");
            for (k, v) in &self.counters {
                let _ = writeln!(out, "  counter {k} = {v}");
            }
            for (k, v) in &self.gauges {
                let _ = writeln!(out, "  gauge   {k} = {v}");
            }
            for (k, h) in &self.histograms {
                let _ = writeln!(
                    out,
                    "  hist    {k}: n={} p50={:.1} p95={:.1} max={:.1}",
                    h.count, h.p50, h.p95, h.max
                );
            }
        }
        if !self.events.is_empty() {
            out.push_str("events:\n");
            for e in &self.events {
                let _ = write!(out, "  {}", e.name);
                for (k, v) in &e.fields {
                    let _ = write!(out, " {k}={v}");
                }
                out.push('\n');
            }
        }
        out
    }
}

// ---------------------------------------------------------------------------
// Minimal JSON writer/parser
// ---------------------------------------------------------------------------

struct JsonWriter {
    out: String,
    /// Whether the current nesting level already has an element (needs a
    /// comma before the next one), innermost last.
    needs_comma: Vec<bool>,
}

impl JsonWriter {
    fn new() -> Self {
        JsonWriter {
            out: String::new(),
            needs_comma: vec![false],
        }
    }

    fn elem(&mut self) {
        if let Some(last) = self.needs_comma.last_mut() {
            if *last {
                self.out.push(',');
            }
            *last = true;
        }
    }

    fn obj_open(&mut self) {
        self.elem();
        self.out.push('{');
        self.needs_comma.push(false);
    }

    fn obj_close(&mut self) {
        self.needs_comma.pop();
        self.out.push('}');
    }

    fn arr_open(&mut self) {
        self.elem();
        self.out.push('[');
        self.needs_comma.push(false);
    }

    fn arr_close(&mut self) {
        self.needs_comma.pop();
        self.out.push(']');
    }

    fn key(&mut self, k: &str) {
        self.elem();
        escape_into(&mut self.out, k);
        self.out.push(':');
        // The value that follows is part of this element, not a new one.
        if let Some(last) = self.needs_comma.last_mut() {
            *last = false;
        }
    }

    fn str(&mut self, s: &str) {
        self.elem();
        escape_into(&mut self.out, s);
    }

    fn u64(&mut self, v: u64) {
        self.elem();
        self.out.push_str(&v.to_string());
    }

    fn f64(&mut self, v: f64) {
        self.elem();
        // `{:?}` prints the shortest representation that round-trips, and
        // always includes a decimal point or exponent.
        self.out.push_str(&format!("{v:?}"));
    }

    fn finish(self) -> String {
        self.out
    }
}

fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parsed JSON value (minimal, for [`RunReport::from_json`] and tests).
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (stored as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, entries in textual order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parses one JSON document (rejecting trailing garbage).
    ///
    /// # Errors
    ///
    /// Returns a byte-offset description of the first syntax error.
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let v = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing data at byte {pos}"));
        }
        Ok(v)
    }

    /// The object entries, if this is an object.
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(entries) => Some(entries),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The number as `f64`, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The number as `u64`, if this is a non-negative integral number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// Looks up an object key.
    pub fn get(&self, key: &str) -> Option<&Json> {
        self.as_obj()?
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
    }
}

fn get<'a>(obj: &'a [(String, Json)], key: &str) -> Result<&'a Json, String> {
    obj.iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v)
        .ok_or_else(|| format!("missing key {key:?}"))
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'{') => {
            *pos += 1;
            let mut entries = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(entries));
            }
            loop {
                skip_ws(b, pos);
                let key = parse_string(b, pos)?;
                skip_ws(b, pos);
                if b.get(*pos) != Some(&b':') {
                    return Err(format!("expected ':' at byte {pos}"));
                }
                *pos += 1;
                let value = parse_value(b, pos)?;
                entries.push((key, value));
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(entries));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {pos}")),
                }
            }
        }
        Some(b'"') => Ok(Json::Str(parse_string(b, pos)?)),
        Some(b't') => parse_lit(b, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_lit(b, pos, "null", Json::Null),
        Some(_) => {
            let start = *pos;
            while *pos < b.len()
                && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
            {
                *pos += 1;
            }
            let text = std::str::from_utf8(&b[start..*pos]).unwrap();
            text.parse::<f64>()
                .map(Json::Num)
                .map_err(|_| format!("bad number {text:?} at byte {start}"))
        }
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("bad literal at byte {pos}"))
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    if b.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at byte {pos}"));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape")
                            .and_then(|h| std::str::from_utf8(h).map_err(|_| "bad \\u escape"))
                            .map_err(str::to_string)?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| format!("bad \\u escape {hex:?}"))?;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {pos}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (multi-byte sequences pass
                // through unchanged).
                let start = *pos;
                *pos += 1;
                while *pos < b.len() && (b[*pos] & 0xC0) == 0x80 {
                    *pos += 1;
                }
                out.push_str(std::str::from_utf8(&b[start..*pos]).map_err(|e| e.to_string())?);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_is_inert() {
        let tel = Telemetry::disabled();
        assert!(!tel.is_enabled());
        {
            let mut s = tel.span("x");
            s.add("c", 1);
        }
        tel.count("c", 5);
        tel.record("h", 1.0);
        tel.event("e", &[("k", "v".to_string())]);
        assert_eq!(tel.report(), RunReport::default());
    }

    #[test]
    fn spans_nest_and_time() {
        let tel = Telemetry::enabled();
        {
            let mut outer = tel.span("outer");
            outer.add("n", 2);
            outer.add("n", 3);
            {
                let _inner = tel.span("inner");
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
        }
        let r = tel.report();
        assert_eq!(r.spans.len(), 2);
        assert_eq!(r.spans[0].name, "outer");
        assert_eq!(r.spans[0].depth, 0);
        assert_eq!(r.spans[0].counters, vec![("n".to_string(), 5)]);
        assert_eq!(r.spans[1].name, "inner");
        assert_eq!(r.spans[1].depth, 1);
        assert!(r.spans[0].dur_us >= r.spans[1].dur_us);
        assert!(r.spans[1].start_us >= r.spans[0].start_us);
    }

    #[test]
    fn histogram_percentiles() {
        let mut h = Histogram::new();
        for v in [5.0, 1.0, 3.0, 2.0, 4.0] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.median(), 3.0);
        assert_eq!(h.percentile(95.0), 5.0);
        assert_eq!(h.max(), 5.0);
        assert_eq!(h.percentile(0.0), 1.0);
        assert_eq!(Histogram::new().percentile(50.0), 0.0);
    }

    #[test]
    fn json_round_trip() {
        let tel = Telemetry::enabled();
        {
            let mut s = tel.span("stage.one");
            s.add("items", 7);
        }
        tel.count("edges \"quoted\"\n", 3);
        tel.gauge("nodes", 10);
        tel.record("lat_us", 1.5);
        tel.record("lat_us", 2.5);
        tel.event("govern.exhausted", &[("reason", "steps".to_string())]);
        let report = tel.report();
        let json = report.to_json();
        let back = RunReport::from_json(&json).expect("parses");
        assert_eq!(back, report);
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("{} x").is_err());
        assert!(RunReport::from_json("{\"schema\":\"other\"}").is_err());
    }

    #[test]
    fn histogram_quantile_edge_cases() {
        // Empty: every quantile is 0.0, summary is all-zero.
        let empty = Histogram::new();
        for p in [0.0, 50.0, 95.0, 100.0] {
            assert_eq!(empty.percentile(p), 0.0);
        }
        assert_eq!(empty.summary(), HistogramSummary::default());

        // Single sample: every quantile is that sample.
        let mut one = Histogram::new();
        one.record(7.5);
        for p in [0.0, 1.0, 50.0, 95.0, 100.0] {
            assert_eq!(one.percentile(p), 7.5);
        }
        let s = one.summary();
        assert_eq!(
            (s.count, s.sum, s.p50, s.p95, s.max),
            (1, 7.5, 7.5, 7.5, 7.5)
        );
    }

    #[test]
    fn histogram_merge_matches_union() {
        // Three "workers" record disjoint sample sets; merged quantiles
        // must equal a single histogram fed the union.
        let mut workers = vec![Histogram::new(), Histogram::new(), Histogram::new()];
        let mut union = Histogram::new();
        for (i, w) in workers.iter_mut().enumerate() {
            for j in 0..4 {
                let v = (i * 10 + j) as f64;
                w.record(v);
                union.record(v);
            }
        }
        let mut merged = Histogram::new();
        for w in &workers {
            merged.merge(w);
        }
        assert_eq!(merged.count(), union.count());
        assert_eq!(merged.sum(), union.sum());
        for p in [0.0, 25.0, 50.0, 90.0, 95.0, 100.0] {
            assert_eq!(merged.percentile(p), union.percentile(p));
        }
        // Merging an empty histogram is a no-op.
        let before = merged.summary();
        merged.merge(&Histogram::new());
        assert_eq!(merged.summary(), before);
    }

    #[test]
    fn flight_recorder_wraps_and_orders() {
        let rec = FlightRecorder::new(4);
        assert_eq!(rec.capacity(), 4);
        assert!(rec.snapshot().is_empty());
        for i in 0..10u64 {
            let seq = rec.record(FlightKind::RequestAdmitted, "c", i, 0);
            assert_eq!(seq, i);
        }
        assert_eq!(rec.recorded(), 10);
        let snap = rec.snapshot();
        // Only the newest `capacity` events survive, strictly ordered.
        assert_eq!(
            snap.iter().map(|e| e.seq).collect::<Vec<_>>(),
            vec![6, 7, 8, 9]
        );
        assert_eq!(
            snap.iter().map(|e| e.a).collect::<Vec<_>>(),
            vec![6, 7, 8, 9]
        );
        let tail = rec.tail(2);
        assert_eq!(tail.iter().map(|e| e.seq).collect::<Vec<_>>(), vec![8, 9]);
        assert_eq!(rec.tail(0).len(), 0);
    }

    #[test]
    fn flight_recorder_truncates_labels_on_char_boundary() {
        let rec = FlightRecorder::new(2);
        let long = "x".repeat(FLIGHT_LABEL_BYTES + 10);
        rec.record(FlightKind::SessionBuilt, &long, 0, 0);
        // Multi-byte char straddling the cut is dropped whole.
        let multi = format!("{}é", "a".repeat(FLIGHT_LABEL_BYTES - 1));
        rec.record(FlightKind::SessionBuilt, &multi, 0, 0);
        let snap = rec.snapshot();
        assert_eq!(snap[0].label(), "x".repeat(FLIGHT_LABEL_BYTES));
        assert_eq!(snap[1].label(), "a".repeat(FLIGHT_LABEL_BYTES - 1));
    }

    #[test]
    fn flight_recorder_concurrent_writers_keep_order() {
        use std::sync::Arc;
        let rec = Arc::new(FlightRecorder::new(64));
        let writers = 4;
        let per_writer = 500u64;
        std::thread::scope(|s| {
            for w in 0..writers {
                let rec = Arc::clone(&rec);
                s.spawn(move || {
                    for i in 0..per_writer {
                        rec.record(FlightKind::RequestAdmitted, "w", w as u64, i);
                    }
                });
            }
        });
        let total = writers as u64 * per_writer;
        assert_eq!(rec.recorded(), total);
        let snap = rec.snapshot();
        assert_eq!(snap.len(), 64);
        // The snapshot is the contiguous, strictly-increasing suffix of
        // all sequence numbers — wrap-around never reorders or drops a
        // live slot, even with racing writers.
        for (i, e) in snap.iter().enumerate() {
            assert_eq!(e.seq, total - 64 + i as u64);
        }
        // Each writer's own payloads arrive in its program order.
        for w in 0..writers as u64 {
            let mine: Vec<u64> = snap.iter().filter(|e| e.a == w).map(|e| e.b).collect();
            assert!(
                mine.windows(2).all(|p| p[0] < p[1]),
                "writer {w} reordered: {mine:?}"
            );
        }
    }
}
