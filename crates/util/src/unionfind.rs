//! Union-find with path compression and union by rank.

/// Disjoint-set forest over `0..n`.
///
/// Used to merge heap partitions that must share a dependence-graph node.
///
/// # Examples
///
/// ```
/// use thinslice_util::UnionFind;
///
/// let mut uf = UnionFind::new(4);
/// uf.union(0, 1);
/// uf.union(2, 3);
/// assert_eq!(uf.find(0), uf.find(1));
/// assert_ne!(uf.find(1), uf.find(2));
/// ```
#[derive(Debug, Clone)]
pub struct UnionFind {
    parent: Vec<u32>,
    rank: Vec<u8>,
}

impl UnionFind {
    /// Creates `n` singleton sets.
    pub fn new(n: usize) -> Self {
        Self {
            parent: (0..n as u32).collect(),
            rank: vec![0; n],
        }
    }

    /// Adds a new singleton set, returning its element.
    pub fn push(&mut self) -> usize {
        let i = self.parent.len();
        self.parent.push(i as u32);
        self.rank.push(0);
        i
    }

    /// Number of elements (not sets).
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// Whether there are no elements.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Returns the canonical representative of `x`'s set.
    pub fn find(&mut self, x: usize) -> usize {
        let mut root = x;
        while self.parent[root] as usize != root {
            root = self.parent[root] as usize;
        }
        // Path compression.
        let mut cur = x;
        while self.parent[cur] as usize != cur {
            let next = self.parent[cur] as usize;
            self.parent[cur] = root as u32;
            cur = next;
        }
        root
    }

    /// Merges the sets of `a` and `b`; returns the new representative.
    pub fn union(&mut self, a: usize, b: usize) -> usize {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return ra;
        }
        let (hi, lo) = if self.rank[ra] >= self.rank[rb] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        self.parent[lo] = hi as u32;
        if self.rank[hi] == self.rank[lo] {
            self.rank[hi] += 1;
        }
        hi
    }

    /// Whether `a` and `b` are in the same set.
    pub fn same_set(&mut self, a: usize, b: usize) -> bool {
        self.find(a) == self.find(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SmallRng;

    #[test]
    fn basic_unions() {
        let mut uf = UnionFind::new(5);
        uf.union(0, 1);
        uf.union(1, 2);
        assert!(uf.same_set(0, 2));
        assert!(!uf.same_set(0, 3));
        let e = uf.push();
        assert_eq!(e, 5);
        uf.union(3, e);
        assert!(uf.same_set(3, 5));
    }

    #[test]
    fn union_is_transitive() {
        for seed in 0..32u64 {
            let mut rng = SmallRng::new(seed);
            let pairs: Vec<(usize, usize)> = (0..rng.range_usize(0, 40))
                .map(|_| (rng.range_usize(0, 30), rng.range_usize(0, 30)))
                .collect();
            let mut uf = UnionFind::new(30);
            for &(a, b) in &pairs {
                uf.union(a, b);
            }
            // Closure check: representatives partition consistently.
            for &(a, b) in &pairs {
                assert!(uf.same_set(a, b), "seed {seed}: {a} and {b} must merge");
            }
            for x in 0..30 {
                let r = uf.find(x);
                assert_eq!(uf.find(r), r, "seed {seed}: root of {x} must be a fixpoint");
            }
        }
    }
}
