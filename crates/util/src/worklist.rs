//! A FIFO worklist that deduplicates queued items.

use crate::{BitSet, Idx};
use std::collections::VecDeque;

/// A FIFO worklist over a dense index domain.
///
/// An item that is already queued is not queued twice; once popped it may be
/// queued again. This is the standard driver for fixed-point constraint
/// solvers.
///
/// # Examples
///
/// ```
/// use thinslice_util::Worklist;
///
/// let mut wl: Worklist<usize> = Worklist::new();
/// wl.push(1);
/// wl.push(1); // deduplicated
/// wl.push(2);
/// assert_eq!(wl.pop(), Some(1));
/// assert_eq!(wl.pop(), Some(2));
/// assert_eq!(wl.pop(), None);
/// ```
#[derive(Debug, Clone)]
pub struct Worklist<I: Idx = usize> {
    queue: VecDeque<I>,
    queued: BitSet<I>,
}

impl<I: Idx> Default for Worklist<I> {
    fn default() -> Self {
        Self::new()
    }
}

impl<I: Idx> Worklist<I> {
    /// Creates an empty worklist.
    pub fn new() -> Self {
        Self {
            queue: VecDeque::new(),
            queued: BitSet::new(),
        }
    }

    /// Queues `item` unless it is already pending; returns `true` if queued.
    pub fn push(&mut self, item: I) -> bool {
        if self.queued.insert(item) {
            self.queue.push_back(item);
            true
        } else {
            false
        }
    }

    /// Pops the oldest pending item.
    pub fn pop(&mut self) -> Option<I> {
        let item = self.queue.pop_front()?;
        self.queued.remove(item);
        Some(item)
    }

    /// Whether nothing is pending.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Number of pending items.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// Drops all pending items (membership bits included).
    pub fn clear(&mut self) {
        while self.pop().is_some() {}
    }
}

impl<I: Idx> Extend<I> for Worklist<I> {
    fn extend<It: IntoIterator<Item = I>>(&mut self, iter: It) {
        for i in iter {
            self.push(i);
        }
    }
}

impl<I: Idx> FromIterator<I> for Worklist<I> {
    fn from_iter<It: IntoIterator<Item = I>>(iter: It) -> Self {
        let mut wl = Self::new();
        wl.extend(iter);
        wl
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order() {
        let mut wl: Worklist<usize> = [3, 1, 2].into_iter().collect();
        assert_eq!(wl.len(), 3);
        assert_eq!(wl.pop(), Some(3));
        assert_eq!(wl.pop(), Some(1));
        assert_eq!(wl.pop(), Some(2));
        assert!(wl.is_empty());
    }

    #[test]
    fn requeue_after_pop() {
        let mut wl: Worklist<usize> = Worklist::new();
        assert!(wl.push(5));
        assert!(!wl.push(5));
        assert_eq!(wl.pop(), Some(5));
        assert!(wl.push(5));
        assert_eq!(wl.pop(), Some(5));
        assert_eq!(wl.pop(), None);
    }
}
