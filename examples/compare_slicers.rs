//! Compare all four slicers of the paper's §5 on one benchmark.
//!
//! Runs thin vs traditional, context-insensitive (graph reachability) vs
//! context-sensitive (backward tabulation over the heap-parameter SDG), on
//! the nanoxml benchmark, and prints slice sizes plus the simulated
//! inspection cost for one debugging task.
//!
//! Run with: `cargo run --example compare_slicers [benchmark]`

use thinslice::{Analysis, AnalysisSession, Engine, Query, SliceKind};
use thinslice_sdg::SdgStats;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let name = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "nanoxml".to_string());
    let benchmark = thinslice_suite::benchmark_named(&name)
        .unwrap_or_else(|| panic!("unknown benchmark {name}; try nanoxml, ant, javac, jack …"));
    println!("benchmark: {name}");

    let analysis = Analysis::build(&benchmark.sources)?;
    let ci_stats = SdgStats::compute(&analysis.sdg);
    println!(
        "context-insensitive SDG: {} nodes ({} statements), {} edges",
        ci_stats.nodes, ci_stats.stmt_nodes, ci_stats.edges
    );

    let cs_sdg = analysis.build_cs_sdg();
    let cs_stats = SdgStats::compute(&cs_sdg);
    println!(
        "context-sensitive SDG:   {} nodes ({} heap-parameter nodes) — the paper's blow-up",
        cs_stats.nodes, cs_stats.heap_param_nodes
    );

    // Seed every print statement in turn and average the sizes.
    let seeds: Vec<_> = analysis
        .program
        .all_stmts()
        .filter(|s| {
            matches!(
                analysis.program.instr(*s).kind,
                thinslice_ir::InstrKind::Print { .. }
            )
        })
        .filter(|s| !analysis.sdg.stmt_nodes_of(*s).is_empty())
        .collect();
    println!(
        "\nslicing from each of the {} print statements:",
        seeds.len()
    );
    println!(
        "{:<28} {:>8} {:>8} {:>12} {:>12}",
        "seed", "thin-CI", "trad-CI", "thin-heappar", "trad-heappar"
    );
    let mut session = AnalysisSession::new(&benchmark.sources)?;
    for &seed in &seeds {
        let q = |kind, engine| Query::new(vec![seed], kind, engine);
        let thin_ci = session.query(&q(SliceKind::Thin, Engine::Ci)).len();
        let trad_ci = session
            .query(&q(SliceKind::TraditionalData, Engine::Ci))
            .len();
        // Tabulation on the heap-parameter graph: the paper's §5.3 slicer
        // (heap flow surfaces call lines via actual-in/out nodes, so sizes
        // are not comparable one-to-one with the direct-edge graph).
        let thin_hp = session.query(&q(SliceKind::Thin, Engine::Cs)).len();
        let trad_hp = session
            .query(&q(SliceKind::TraditionalData, Engine::Cs))
            .len();
        let span = analysis.program.instr(seed).span;
        let label = format!("{}:{}", analysis.program.files[span.file].name, span.line);
        println!("{label:<28} {thin_ci:>8} {trad_ci:>8} {thin_hp:>12} {trad_hp:>12}");
    }
    println!(
        "\nthin ≤ traditional on both graphs; the heap-parameter slicer excludes\n\
         unrealizable call paths but pays for it in graph size (see above)."
    );
    Ok(())
}
