//! The paper's Figure 4: debugging an exception caused by heap aliasing.
//!
//! A `File` is stored in a `Vector`, fetched through one alias and closed,
//! then fetched through another alias and read — which throws. The thin
//! slice from the failing check finds the producers of the `open` flag; one
//! level of *aliasing expansion* (paper §4.1) then reveals how the closed
//! file and the read file are the same object, pinpointing the
//! `closeFile()` call.
//!
//! Run with: `cargo run --example debug_file_handle`

use thinslice::{expand, report, Analysis};
use thinslice_ir::pretty;

const FILE_PROGRAM: &str = r#"class File {
    boolean open;
    File() { this.open = true; }
    boolean isOpen() { return this.open; }
    void closeFile() { this.open = false; }
}
class Main {
    static void main() {
        File f = new File();
        Vector files = new Vector();
        files.add(f);
        File g = (File) files.get(0);
        g.closeFile();
        File h = (File) files.get(0);
        boolean open = h.isOpen();
        if (!open) {
            throw new Exception("read from closed file");
        }
        print("file ok");
    }
}"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let analysis = Analysis::build(&[("file.mj", FILE_PROGRAM)])?;

    // The failure: the throw at line 17. No value flows into a throw's
    // guard from the throw itself, so the user first looks at the
    // lexically-adjacent conditional (paper §4.2)…
    let throw_seed = analysis
        .seed_at_line("file.mj", 17)
        .expect("throw is reachable");
    let conditionals: Vec<_> = throw_seed
        .iter()
        .flat_map(|&s| expand::exposed_control_deps(&analysis.sdg, s))
        .collect();
    println!("relevant control dependence(s) of the throw:");
    for c in &conditionals {
        println!("  {}", pretty::stmt_str(&analysis.program, *c));
    }

    // …and thin-slices from it.
    let thin = analysis.thin_slice(&conditionals);
    println!("\nthin slice from the conditional (producers of `open`):");
    for line in report::slice_lines(&analysis.program, &thin) {
        println!("  {line}");
    }

    // The slice shows `this.open = false` in closeFile, but not *which*
    // File was closed. Ask the aliasing question for the load/store pair.
    let pairs = expand::heap_flow_pairs(&analysis.program, &analysis.sdg, &thin);
    let (load, store) = pairs
        .iter()
        .find(|(_, s)| {
            // the store inside closeFile
            analysis.program.methods[s.method].name == "closeFile"
        })
        .copied()
        .expect("the closeFile store communicates with the isOpen load");
    println!("\nexplaining the aliasing between:");
    println!("  load : {}", pretty::stmt_str(&analysis.program, load));
    println!("  store: {}", pretty::stmt_str(&analysis.program, store));

    let explanation = analysis.explain_aliasing(load, store)?;
    println!("\nstatements showing the common File's flow (paper §4.1):");
    for s in explanation.statements() {
        println!("  {}", pretty::stmt_str(&analysis.program, s));
    }
    println!(
        "\n=> the `g.closeFile()` call on an alias fetched from the Vector is revealed;\n\
         the fix is to not close the file, or to remove it from the Vector."
    );

    // Contrast: the traditional slice gets there too, but buries the
    // answer in base-pointer plumbing.
    let trad = analysis.traditional_slice(&conditionals);
    println!(
        "\nthin slice: {} statements + {} explanation statements; traditional slice: {} statements",
        thin.len(),
        explanation.statements().len(),
        trad.len()
    );
    Ok(())
}
