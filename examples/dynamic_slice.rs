//! Dynamic thin slicing: run the paper's Figure 1 program on real input,
//! watch the bug happen, and slice the *execution trace* backwards.
//!
//! The paper (§1) notes that "dynamic thin slices can be defined in a
//! straightforward manner using dynamic data dependences"; this example
//! shows them side by side with the static ones. The dynamic slice is
//! exact (index-sensitive, run-specific) and always a subset of the static
//! slice of the same seed.
//!
//! Run with: `cargo run --example dynamic_slice`

use thinslice::Analysis;
use thinslice_interp::{dynamic_data_slice, dynamic_thin_slice, run, ExecConfig};
use thinslice_ir::pretty;

const FIGURE1: &str = r#"class Names {
    static Vector readNames(InputStream input) {
        Vector firstNames = new Vector();
        while (!input.eof()) {
            String fullName = input.readLine();
            int spaceInd = fullName.indexOf(" ");
            String firstName = fullName.substring(0, spaceInd - 1);
            firstNames.add(firstName);
        }
        return firstNames;
    }
    static void printNames(Vector firstNames) {
        for (int i = 0; i < firstNames.size(); i++) {
            String firstName = (String) firstNames.get(i);
            print("FIRST NAME: " + firstName);
        }
    }
}
class Main {
    static void main() {
        Vector firstNames = Names.readNames(new InputStream("input"));
        Names.printNames(firstNames);
    }
}"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let analysis = Analysis::build(&[("fig1.mj", FIGURE1)])?;

    // Run with the paper's input "John Doe" (plus a second name so the
    // index-sensitivity of dynamic dependences shows).
    let exec = run(
        &analysis.program,
        &ExecConfig {
            lines: vec!["John Doe".into(), "Jane Roe".into()],
            ..ExecConfig::default()
        },
    );
    println!("program output ({:?}):", exec.outcome);
    for (_, text) in &exec.prints {
        println!("  {text}");
    }
    println!("\nthe bug manifests: \"Joh\" instead of \"John\" (substring off-by-one).\n");

    // Slice the trace from the *first* print event.
    let (seed_event, _) = exec.prints[0];
    let dyn_thin = dynamic_thin_slice(&exec, seed_event);
    let dyn_data = dynamic_data_slice(&exec, seed_event);
    println!(
        "dynamic thin slice of print #1: {} statements (data slice: {}):",
        dyn_thin.stmt_count(),
        dyn_data.stmt_count()
    );
    let mut stmts: Vec<_> = dyn_thin.stmts.iter().copied().collect();
    stmts.sort();
    for s in stmts {
        println!("  {}", pretty::stmt_str(&analysis.program, s));
    }

    // Compare with the static thin slice of the same seed statement.
    let seed_stmt = exec.events[seed_event].stmt;
    let static_thin = analysis.thin_slice(&[seed_stmt]);
    println!(
        "\nstatic thin slice of the same seed: {} statements — the dynamic slice is a\n\
         subset ({}): the run only exercised one path and one vector slot.",
        static_thin.len(),
        dyn_thin.stmts.iter().all(|s| static_thin.contains(*s)),
    );
    Ok(())
}
