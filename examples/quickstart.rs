//! Quickstart: the paper's Figure 1, end to end.
//!
//! A program reads full names, extracts first names into a `Vector`, parks
//! the vector in a session object, and later prints the names. The
//! extraction is buggy (`spaceInd - 1` instead of `spaceInd`). A
//! traditional slice from the print statement contains essentially the
//! whole program; the thin slice is six-ish lines that walk straight to
//! the bug.
//!
//! Run with: `cargo run --example quickstart`

use thinslice::{report, Analysis};

/// The paper's Figure 1, transliterated to MJ.
const FIGURE1: &str = r#"class Names {
    static Vector readNames(InputStream input) {
        Vector firstNames = new Vector();
        while (!input.eof()) {
            String fullName = input.readLine();
            int spaceInd = fullName.indexOf(" ");
            String firstName = fullName.substring(0, spaceInd - 1);
            firstNames.add(firstName);
        }
        return firstNames;
    }
    static void printNames(Vector firstNames) {
        for (int i = 0; i < firstNames.size(); i++) {
            String firstName = (String) firstNames.get(i);
            print("FIRST NAME: " + firstName);
        }
    }
}
class SessionState {
    Vector names;
    void setNames(Vector v) { this.names = v; }
    Vector getNames() { return this.names; }
}
class Main {
    static SessionState state;
    static SessionState getState() {
        if (Main.state == null) { Main.state = new SessionState(); }
        return Main.state;
    }
    static void main() {
        Vector firstNames = Names.readNames(new InputStream("input"));
        SessionState s = Main.getState();
        s.setNames(firstNames);
        SessionState t = Main.getState();
        Names.printNames(t.getNames());
    }
}"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let analysis = Analysis::build(&[("fig1.mj", FIGURE1)])?;

    // Seed: the print statement (line 15 of fig1.mj).
    let seed = analysis
        .seed_at_line("fig1.mj", 15)
        .expect("print line is reachable");

    let thin = analysis.thin_slice(&seed);
    let trad = analysis.traditional_slice(&seed);

    println!("=== Thin slice from the print (producer statements only) ===");
    for line in report::slice_lines(&analysis.program, &thin) {
        if line.starts_with("fig1.mj") {
            println!("  {line}");
        }
    }
    println!();
    println!("=== Traditional slice from the same seed ===");
    for line in report::slice_lines(&analysis.program, &trad) {
        if line.starts_with("fig1.mj") {
            println!("  {line}");
        }
    }
    println!();
    println!(
        "thin slice: {} statements; traditional slice: {} statements",
        thin.len(),
        trad.len()
    );
    println!(
        "the buggy `substring(0, spaceInd - 1)` is reached after inspecting far fewer lines\n\
         with the thin slice — container plumbing and SessionState aliasing are excluded."
    );
    Ok(())
}
