//! The paper's Figure 5: understanding why a "tough cast" cannot fail.
//!
//! `Optimizer.simplify` reads `n.op` and downcasts `n` to `AddNode` inside
//! `if (op == 1)`. The pointer analysis cannot verify the cast (`n` may be
//! any `Node`), so a human must discover the invariant: only `AddNode`'s
//! constructor writes opcode 1. Thin slicing from the `op` read surfaces
//! exactly the constructor opcode writes.
//!
//! Run with: `cargo run --example tough_cast`

use thinslice::{report, Analysis, SliceKind};
use thinslice_ir::{pretty, InstrKind, Operand};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The javac benchmark is Figure 5 at scale: 12 Node subclasses.
    let benchmark = thinslice_suite::benchmark_named("javac").expect("javac benchmark");
    let analysis = Analysis::build(&benchmark.sources)?;

    // Find the (AddNode) cast and check it really is tough.
    let cast_line = thinslice_suite::line_with(
        thinslice_suite::programs::javac::SOURCE,
        "AddNode add = (AddNode) n;",
    );
    let cast_stmts = analysis.stmts_at_line("javac.mj", cast_line);
    let (method, src_var, target_ty) = cast_stmts
        .iter()
        .find_map(|s| match &analysis.program.instr(*s).kind {
            InstrKind::Cast {
                src: Operand::Var(v),
                ty,
                ..
            } => Some((s.method, *v, ty.clone())),
            _ => None,
        })
        .expect("cast on the line");
    let verified = analysis
        .pta
        .cast_is_verified(&analysis.program, method, src_var, &target_ty);
    println!(
        "the (AddNode) cast is {} by the pointer analysis",
        if verified {
            "VERIFIED (not tough)"
        } else {
            "NOT verifiable — a tough cast"
        }
    );

    // Follow the control dependence from the cast to `if (op == 1)`, then
    // thin-slice from the conditional: what values can `op` hold, and who
    // writes them?
    let conditionals: Vec<_> = cast_stmts
        .iter()
        .flat_map(|&s| thinslice::expand::exposed_control_deps(&analysis.sdg, s))
        .collect();
    println!("\ncontrolling conditional(s):");
    for c in &conditionals {
        println!("  {}", pretty::stmt_str(&analysis.program, *c));
    }

    let thin = analysis.thin_slice(&conditionals);
    println!("\nthin slice from the conditional — the opcode writes of every Node subclass:");
    for line in report::slice_lines(&analysis.program, &thin) {
        if line.contains("super(") || line.contains("this.op = op") {
            println!("  {line}");
        }
    }
    println!(
        "\nthese writes show op == 1 happens only in AddNode's constructor, so the cast is safe.\n\
         (\"many of the thin slice statements were writes of opcodes in a large number of\n\
         constructors, which could be quickly inspected\" — paper §6.3)"
    );

    let trad = analysis.traditional_slice(&conditionals);
    let _ = SliceKind::TraditionalData;
    println!(
        "\nthin slice: {} statements; traditional slice: {} statements",
        thin.len(),
        trad.len()
    );
    Ok(())
}
