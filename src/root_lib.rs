//! Workspace root crate.
//!
//! This crate exists to host the repository-level `examples/` and `tests/`
//! directories; the actual functionality lives in the `thinslice-*` crates.
//! It re-exports the public crates for convenience so examples can write
//! `use thinslice_repro::prelude::*;`.

/// One-stop imports for examples and integration tests.
pub mod prelude {
    pub use thinslice::*;
    pub use thinslice_ir as ir;
    pub use thinslice_pta as pta;
    pub use thinslice_sdg as sdg;
    pub use thinslice_suite as suite;
}
