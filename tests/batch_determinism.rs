//! The parallel batched query engine must be a pure performance feature:
//! for every slicer variant, every benchmark program and every thread
//! count, its output is bit-for-bit the sequential single-query output.
//!
//! This holds by construction — workers share only immutable data (the
//! frozen CSR graph, the down-edge index) and per-worker scratch reuse
//! clears or memoises only query-independent facts — and this test pins
//! the construction down against the whole evaluation suite.

// This suite deliberately exercises the legacy node-level entrypoints: it
// pins the batch engines against the exact sequential slicers they wrap,
// below the session/Query layer (which tests/session_api.rs covers).
#![allow(deprecated)]

use thinslice::{batch, cs_slice, slice_from, SliceKind};
use thinslice_ir::InstrKind;
use thinslice_pta::PtaConfig;
use thinslice_sdg::{DepGraph, NodeId};

const BFS_KINDS: [SliceKind; 3] = [
    SliceKind::Thin,
    SliceKind::TraditionalData,
    SliceKind::TraditionalFull,
];

/// One query per print statement of the program, resolved against `graph`.
fn print_queries<G: DepGraph>(program: &thinslice_ir::Program, graph: &G) -> Vec<Vec<NodeId>> {
    program
        .all_stmts()
        .filter(|s| matches!(program.instr(*s).kind, InstrKind::Print { .. }))
        .map(|s| graph.stmt_nodes_of(s).to_vec())
        .filter(|nodes| !nodes.is_empty())
        .collect()
}

/// Tiles `queries` so batches are large enough to take the prefiltered
/// fast path as well as the small-batch path.
fn tiled(queries: &[Vec<NodeId>], n: usize) -> Vec<Vec<NodeId>> {
    queries.iter().cycle().take(n).cloned().collect()
}

#[test]
fn batched_bfs_slices_match_sequential_on_all_benchmarks() {
    for b in thinslice_suite::all_benchmarks() {
        let a = b.analyze(PtaConfig::default());
        let queries = print_queries(&a.program, &a.csr);
        assert!(!queries.is_empty(), "{}: no print queries", b.name);
        for kind in BFS_KINDS {
            let sequential: Vec<_> = queries
                .iter()
                .map(|q| slice_from(&a.sdg, q, kind))
                .collect();
            for threads in [1, 2, 4, 8] {
                let batched = batch::slices(&a.csr, &queries, kind, threads);
                assert_eq!(batched.len(), sequential.len());
                for (got, want) in batched.iter().zip(&sequential) {
                    assert_eq!(
                        got.stmts, want.stmts,
                        "{}: {kind:?} at {threads} threads",
                        b.name
                    );
                    assert_eq!(got.nodes, want.nodes, "{}: {kind:?}", b.name);
                }
            }
        }
    }
}

#[test]
fn batched_tabulation_matches_sequential_on_all_benchmarks() {
    for b in thinslice_suite::all_benchmarks() {
        let a = b.analyze(PtaConfig::default());
        // The tabulation is paired with the heap-parameter graph, as in
        // the paper (§5.3).
        let cs_sdg = a.build_cs_sdg();
        let cs_frozen = cs_sdg.freeze();
        let queries = print_queries(&a.program, &cs_frozen);
        assert!(!queries.is_empty(), "{}: no print queries", b.name);
        let sequential: Vec<_> = queries
            .iter()
            .map(|q| cs_slice(&cs_sdg, q, SliceKind::Thin))
            .collect();
        for threads in [1, 2, 4, 8] {
            let batched = batch::cs_slices(&cs_frozen, &queries, SliceKind::Thin, threads);
            assert_eq!(batched.len(), sequential.len());
            for (got, want) in batched.iter().zip(&sequential) {
                assert_eq!(got.stmts, want.stmts, "{}: {threads} threads", b.name);
                assert_eq!(got.nodes, want.nodes, "{}", b.name);
            }
        }
    }
}

#[test]
fn large_batches_match_sequential_through_every_fast_path() {
    // Tile queries past the batch engine's internal thresholds so the
    // per-batch edge prefilter and the scratch-memoisation paths are all
    // exercised, on one benchmark from each heap mode.
    let b = thinslice_suite::benchmark_named("nanoxml").expect("nanoxml exists");
    let a = b.analyze(PtaConfig::default());

    let queries = tiled(&print_queries(&a.program, &a.csr), 20);
    for kind in BFS_KINDS {
        let batched = batch::slices(&a.csr, &queries, kind, 2);
        for (got, seeds) in batched.iter().zip(&queries) {
            let want = slice_from(&a.sdg, seeds, kind);
            assert_eq!(got.stmts, want.stmts, "{kind:?}");
            assert_eq!(got.nodes, want.nodes, "{kind:?}");
        }
    }

    let cs_sdg = a.build_cs_sdg();
    let cs_frozen = cs_sdg.freeze();
    let cs_queries = tiled(&print_queries(&a.program, &cs_frozen), 20);
    for kind in BFS_KINDS {
        let batched = batch::cs_slices(&cs_frozen, &cs_queries, kind, 2);
        for (got, seeds) in batched.iter().zip(&cs_queries) {
            let want = cs_slice(&cs_sdg, seeds, kind);
            assert_eq!(got.stmts, want.stmts, "{kind:?}");
            assert_eq!(got.nodes, want.nodes, "{kind:?}");
        }
    }
}
