//! Differential testing: the interpreter's dynamic dependence trace is an
//! oracle for the static analyses.
//!
//! Soundness of the static thin slicer means: for any execution and any
//! seed statement, the statements in the *dynamic* thin slice (exact,
//! index-sensitive, per-run) must all appear in the *static* thin slice of
//! the same seed. Likewise for the full data slices, and the dynamic call
//! targets must be within the static call graph.

use thinslice::Analysis;
use thinslice_interp::{dynamic_data_slice, dynamic_thin_slice, run, ExecConfig, Outcome};
use thinslice_ir::InstrKind;
use thinslice_suite::{generate, GeneratorConfig};
use thinslice_util::SmallRng;

fn exec_config() -> ExecConfig {
    ExecConfig {
        lines: vec![
            "alpha beta=1 /".into(),
            "gamma delta=2".into(),
            "x=3 tail".into(),
        ],
        ints: vec![3, 1, 4, 1, 5, 9, 2, 6],
        max_steps: 100_000,
        ..ExecConfig::default()
    }
}

/// Runs one program and checks dynamic ⊆ static for every executed print.
fn check_program(sources: &[(&str, &str)], config: &ExecConfig) {
    let analysis = Analysis::build(sources).expect("compiles");
    let exec = run(&analysis.program, config);
    // Whatever the outcome, the recorded prefix of the trace is valid.
    for (idx, (event, _)) in exec.prints.iter().enumerate() {
        let seed_stmt = exec.events[*event].stmt;
        if analysis.sdg.stmt_nodes_of(seed_stmt).is_empty() {
            continue;
        }
        let static_thin = analysis.thin_slice(&[seed_stmt]).stmt_set();
        let static_data = analysis.traditional_slice(&[seed_stmt]).stmt_set();
        let dyn_thin = dynamic_thin_slice(&exec, *event);
        let dyn_data = dynamic_data_slice(&exec, *event);
        for s in &dyn_thin.stmts {
            assert!(
                static_thin.contains(s),
                "print #{idx}: dynamic thin stmt {s:?} missing from static thin slice"
            );
        }
        for s in &dyn_data.stmts {
            assert!(
                static_data.contains(s),
                "print #{idx}: dynamic data stmt {s:?} missing from static data slice"
            );
        }
        // Thin ⊆ data dynamically too.
        assert!(dyn_thin.stmts.is_subset(&dyn_data.stmts));
    }
}

#[test]
fn dynamic_slices_are_subsets_on_all_benchmarks() {
    for b in thinslice_suite::all_benchmarks() {
        let sources: Vec<(&str, &str)> = b.sources.clone();
        check_program(&sources, &exec_config());
    }
}

#[test]
fn benchmarks_actually_execute() {
    // Every benchmark must run far enough to print something — otherwise
    // the differential test is vacuous.
    for b in thinslice_suite::all_benchmarks() {
        let analysis = Analysis::build(&b.sources).unwrap();
        let exec = run(&analysis.program, &exec_config());
        assert!(
            !exec.prints.is_empty() || !matches!(exec.outcome, Outcome::Finished),
            "{}: executed {} steps, printed nothing, finished silently",
            b.name,
            exec.step_count()
        );
        assert!(exec.step_count() > 10, "{}: trivial execution", b.name);
    }
}

#[test]
fn figure1_dynamic_trace_reproduces_the_bug() {
    // Running the paper's Figure 1 actually prints "FIRST NAME: Joh" — the
    // off-by-one bug — and the dynamic thin slice from that print contains
    // the buggy substring statement.
    let src = r#"class Names {
    static Vector readNames(InputStream input) {
        Vector firstNames = new Vector();
        while (!input.eof()) {
            String fullName = input.readLine();
            int spaceInd = fullName.indexOf(" ");
            String firstName = fullName.substring(0, spaceInd - 1);
            firstNames.add(firstName);
        }
        return firstNames;
    }
    static void printNames(Vector firstNames) {
        for (int i = 0; i < firstNames.size(); i++) {
            String firstName = (String) firstNames.get(i);
            print("FIRST NAME: " + firstName);
        }
    }
}
class Main {
    static void main() {
        Vector firstNames = Names.readNames(new InputStream("input"));
        Names.printNames(firstNames);
    }
}"#;
    let analysis = Analysis::build(&[("fig1.mj", src)]).unwrap();
    let exec = run(
        &analysis.program,
        &ExecConfig {
            lines: vec!["John Doe".into()],
            ..ExecConfig::default()
        },
    );
    assert_eq!(exec.outcome, Outcome::Finished, "{:?}", exec.outcome);
    assert_eq!(exec.prints.len(), 1);
    assert_eq!(
        exec.prints[0].1, "FIRST NAME: Joh",
        "the paper's bug, observed at runtime"
    );

    let seed = exec.prints[0].0;
    let dyn_thin = dynamic_thin_slice(&exec, seed);
    let buggy = analysis
        .program
        .all_stmts()
        .find(|s| {
            matches!(&analysis.program.instr(*s).kind, InstrKind::Call { callee, .. }
                if analysis.program.methods[*callee].name == "substring")
        })
        .unwrap();
    assert!(
        dyn_thin.contains_stmt(buggy),
        "the dynamic thin slice walks straight to the buggy substring"
    );
}

/// Dynamic ⊆ static on randomly generated programs with random inputs.
#[test]
fn dynamic_subset_of_static_on_generated_programs() {
    for case in 0..8u64 {
        let mut rng = SmallRng::new(case ^ 0xd1ff);
        let seed = rng.next_u64() % 300;
        let ints: Vec<i64> = (0..rng.range_usize(4, 16))
            .map(|_| rng.range_i64(-50, 50))
            .collect();
        let config = GeneratorConfig {
            seed,
            ..GeneratorConfig::default()
        };
        let src = generate(&config);
        let exec_config = ExecConfig {
            ints,
            max_steps: 50_000,
            ..ExecConfig::default()
        };
        check_program(&[("gen.mj", &src)], &exec_config);
    }
}
