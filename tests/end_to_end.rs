//! End-to-end pipeline tests across all crates: every benchmark compiles,
//! analyses, and satisfies the structural relations between the four
//! slicers.

use thinslice::{Analysis, Engine, Query, RunCtx, SliceKind};
use thinslice_ir::InstrKind;
use thinslice_pta::PtaConfig;

/// Every print statement of every benchmark, as a slicing seed.
fn print_seeds(a: &Analysis) -> Vec<thinslice_ir::StmtRef> {
    a.program
        .all_stmts()
        .filter(|s| matches!(a.program.instr(*s).kind, InstrKind::Print { .. }))
        .filter(|s| !a.sdg.stmt_nodes_of(*s).is_empty())
        .collect()
}

#[test]
fn slicer_inclusion_hierarchy_holds_on_all_benchmarks() {
    for b in thinslice_suite::all_benchmarks() {
        let a = b.analyze(PtaConfig::default());
        for seed in print_seeds(&a) {
            let thin = a.thin_slice(&[seed]);
            let data = a.traditional_slice(&[seed]);
            let full = a.full_slice(&[seed]);
            let thin_set = thin.stmt_set();
            let data_set = data.stmt_set();
            let full_set = full.stmt_set();
            assert!(
                thin_set.is_subset(&data_set),
                "{}: thin ⊆ traditional-data violated at {seed:?}",
                b.name
            );
            assert!(
                data_set.is_subset(&full_set),
                "{}: traditional-data ⊆ full violated at {seed:?}",
                b.name
            );
            // The seed is always in its own slice.
            assert!(
                thin_set.contains(&seed),
                "{}: seed missing from its slice",
                b.name
            );
        }
    }
}

#[test]
fn context_sensitive_slices_are_never_larger() {
    for b in thinslice_suite::all_benchmarks() {
        let a = b.analyze(PtaConfig::default());
        for seed in print_seeds(&a).into_iter().take(3) {
            let nodes = a.sdg.stmt_nodes_of(seed).to_vec();
            // Tabulation vs reachability on the *same* graph: the session's
            // Cs engine answers from the heap-parameter graph instead, so
            // this refinement check stays on the node-level entrypoints.
            #[allow(deprecated)]
            let ci = thinslice::slice_from(&a.sdg, &nodes, SliceKind::Thin);
            #[allow(deprecated)]
            let cs = thinslice::cs_slice(&a.sdg, &nodes, SliceKind::Thin);
            assert!(
                cs.stmts.is_subset(&ci.stmts),
                "{}: tabulation must not add statements at {seed:?}",
                b.name
            );
        }
    }
}

#[test]
fn heap_parameter_graphs_preserve_thin_reachability() {
    // The CS graph routes heap flow differently but must not lose it: a
    // value reachable in the CI thin slice through one store/load pair is
    // reachable in the CS graph too (possibly through heap parameters).
    let b = thinslice_suite::benchmark_named("jtopas").unwrap();
    let a = b.analyze(PtaConfig::default());
    let mut s = b.session(PtaConfig::default(), RunCtx::disabled());

    for seed in print_seeds(&a) {
        let ci = s.query(&Query::new(vec![seed], SliceKind::Thin, Engine::Ci));
        let cs = s.query(&Query::new(vec![seed], SliceKind::Thin, Engine::Cs));
        // Not equality (the CS graph is context-sensitive and strictly more
        // precise), but the CS thin slice must still find producers beyond
        // the seed's own method whenever the CI one does.
        let ci_cross_method = ci.stmts.iter().filter(|s| s.method != seed.method).count();
        let cs_cross_method = cs.stmts.iter().filter(|s| s.method != seed.method).count();
        if ci_cross_method > 0 {
            assert!(
                cs_cross_method > 0,
                "CS thin slice lost all interprocedural flow at {seed:?}"
            );
        }
    }
}

#[test]
fn noobjsens_slices_contain_the_precise_slices() {
    // Dropping object sensitivity only merges abstract state: every
    // statement in the precise thin slice must also be in the imprecise
    // one (monotonicity of abstraction coarsening).
    for name in ["nanoxml", "jack"] {
        let b = thinslice_suite::benchmark_named(name).unwrap();
        let precise = b.analyze(PtaConfig::default());
        let coarse = b.analyze(PtaConfig::without_object_sensitivity());
        for seed in print_seeds(&precise).into_iter().take(4) {
            if coarse.sdg.stmt_nodes_of(seed).is_empty() {
                continue;
            }
            let p = precise.thin_slice(&[seed]).stmt_set();
            let c = coarse.thin_slice(&[seed]).stmt_set();
            assert!(
                p.is_subset(&c),
                "{name}: coarsening must not remove statements at {seed:?}"
            );
        }
    }
}

#[test]
fn all_examples_compile_against_the_suite() {
    // The four tough-cast benchmarks expose casts the pointer analysis
    // cannot verify; the debugging benchmarks expose at least one seed per
    // bug task. This is the contract the examples and tables rely on.
    for task in thinslice_suite::all_bug_tasks() {
        let b = thinslice_suite::benchmark_named(task.benchmark).unwrap();
        let a = b.analyze(PtaConfig::default());
        let resolved = task.resolve(&b, &a);
        assert!(!resolved.seeds.is_empty(), "{}", task.id);
    }
    for task in thinslice_suite::all_cast_tasks() {
        let b = thinslice_suite::benchmark_named(task.benchmark).unwrap();
        let a = b.analyze(PtaConfig::default());
        let resolved = task.resolve(&b, &a);
        assert!(!resolved.seeds.is_empty(), "{}", task.id);
    }
}
