//! The paper's Figure 2/3: the toy aliasing program and the exact
//! classification of its dependence edges.
//!
//! ```text
//! 1 x = new A();
//! 2 z = x;
//! 3 y = new B();
//! 4 w = x;
//! 5 w.f = y;
//! 6 if (w == z) {
//! 7     v = z.f;   // the seed
//! 8 }
//! ```
//!
//! The thin slice for line 7 is {3, 5, 7}: line 5 is a producer because `w`
//! and `z` alias, and line 3 produces the stored value. Lines 1/2/4 are
//! base-pointer explainers, line 6 a control explainer.

use thinslice::{Analysis, SliceKind};
use thinslice_repro::prelude::*;

const FIGURE2: &str = r#"class A {
    A f;
}
class Main {
    static void main() {
        A x = new A();
        A z = x;
        A y = new A();
        A w = x;
        w.f = y;
        if (w == z) {
            A v = z.f;
            print(1);
        }
    }
}"#;

fn line_stmts(a: &Analysis, line: u32) -> Vec<thinslice_ir::StmtRef> {
    a.stmts_at_line("fig2.mj", line)
}

#[test]
fn thin_slice_is_exactly_the_producers() {
    let a = Analysis::build(&[("fig2.mj", FIGURE2)]).unwrap();
    // Seed: line 12, `A v = z.f;`.
    let seed = a.seed_at_line("fig2.mj", 12).expect("seed reachable");
    let thin = a.thin_slice(&seed);

    let lines: std::collections::BTreeSet<u32> = thin
        .stmts
        .iter()
        .map(|&s| a.program.instr(s).span.line)
        .collect();

    // Producers: the seed (12), the store (10), the value allocation (8).
    assert!(lines.contains(&12), "the seed itself: {lines:?}");
    assert!(lines.contains(&10), "the aliased store w.f = y: {lines:?}");
    assert!(
        lines.contains(&8),
        "the allocation of the stored value: {lines:?}"
    );

    // Explainers excluded: base-pointer flow (6, 7, 9) and control (11).
    for excluded in [6u32, 7, 9, 11] {
        assert!(
            !lines.contains(&excluded),
            "line {excluded} is an explainer and must not be in the thin slice: {lines:?}"
        );
    }
}

#[test]
fn traditional_slice_adds_the_explainers() {
    let a = Analysis::build(&[("fig2.mj", FIGURE2)]).unwrap();
    let seed = a.seed_at_line("fig2.mj", 12).unwrap();
    let data = a.traditional_slice(&seed);
    let full = a.full_slice(&seed);

    let lines_of = |s: &thinslice::Slice| -> std::collections::BTreeSet<u32> {
        s.stmts
            .iter()
            .map(|&st| a.program.instr(st).span.line)
            .collect()
    };
    let data_lines = lines_of(&data);
    let full_lines = lines_of(&full);

    // The data slice adds the base-pointer chain (lines 6, 7, 9) but not
    // the conditional.
    for base_ptr in [6u32, 7, 9] {
        assert!(
            data_lines.contains(&base_ptr),
            "{base_ptr} in data slice: {data_lines:?}"
        );
    }
    assert!(
        !data_lines.contains(&11),
        "the conditional is control, not data: {data_lines:?}"
    );
    // The full (Weiser) slice adds the conditional too.
    assert!(
        full_lines.contains(&11),
        "full slice has the control dep: {full_lines:?}"
    );
    assert!(full_lines.is_superset(&data_lines));
}

#[test]
fn edge_classification_matches_figure3() {
    let a = Analysis::build(&[("fig2.mj", FIGURE2)]).unwrap();
    // The seed `v = z.f` (a Load) must have: one producer edge to the
    // store, one excluded (base-pointer) edge to z's def, one control edge
    // to the conditional.
    let load = line_stmts(&a, 12)
        .into_iter()
        .find(|s| {
            matches!(
                a.program.instr(*s).kind,
                thinslice_ir::InstrKind::Load { .. }
            )
        })
        .expect("the field load");
    let node = a.sdg.stmt_node(load).unwrap();
    let mut has_producer_to_store = false;
    let mut has_base_pointer = false;
    let mut has_control = false;
    for e in a.sdg.deps(node) {
        match e.kind {
            thinslice_sdg::EdgeKind::Flow {
                excluded_from_thin: false,
            } if a.sdg.node(e.target).as_stmt().is_some_and(|s| {
                matches!(
                    a.program.instr(s).kind,
                    thinslice_ir::InstrKind::Store { .. }
                )
            }) =>
            {
                has_producer_to_store = true;
            }
            thinslice_sdg::EdgeKind::Flow {
                excluded_from_thin: true,
            } => {
                has_base_pointer = true;
            }
            thinslice_sdg::EdgeKind::Control => has_control = true,
            _ => {}
        }
    }
    assert!(
        has_producer_to_store,
        "solid edge to w.f = y (paper Figure 3)"
    );
    assert!(
        has_base_pointer,
        "dashed base-pointer edge to z's definition"
    );
    assert!(has_control, "dotted control edge to the conditional");
}

#[test]
fn prelude_reexports_work() {
    // The workspace-root crate re-exports everything the examples need.
    let program =
        ir::compile(&[("t.mj", "class Main { static void main() { print(1); } }")]).unwrap();
    let pta_result = pta::Pta::analyze(&program, pta::PtaConfig::default());
    let graph = sdg::build_ci(&program, &pta_result);
    assert!(graph.node_count() > 0);
    assert_eq!(suite::all_benchmarks().len(), 8);
    let _ = SliceKind::Thin;
}
