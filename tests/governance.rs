//! Resource governance across the pipeline: budget-exhausted queries
//! return sound truncated prefixes (never panics or hangs), context-
//! sensitive queries degrade to context-insensitive reachability, and a
//! panicking worker in a batch cannot corrupt its siblings.

use std::time::Duration;
use thinslice::batch::{self, BatchConfig, FaultInjection};
use thinslice::{
    cs_slice, cs_slice_governed, slice_from, slice_from_governed, Budget, Completeness,
    ExhaustReason, QueryError, SliceKind,
};
use thinslice_ir::InstrKind;
use thinslice_pta::PtaConfig;
use thinslice_sdg::{DepGraph, NodeId};

/// One query per print statement of the program, resolved against `graph`.
fn print_queries<G: DepGraph>(program: &thinslice_ir::Program, graph: &G) -> Vec<Vec<NodeId>> {
    program
        .all_stmts()
        .filter(|s| matches!(program.instr(*s).kind, InstrKind::Print { .. }))
        .map(|s| graph.stmt_nodes_of(s).to_vec())
        .filter(|nodes| !nodes.is_empty())
        .collect()
}

fn steps(n: u64) -> Budget {
    Budget::unlimited().with_step_limit(n)
}

#[test]
fn truncated_bfs_slices_are_nonempty_prefixes_of_the_full_slice() {
    for b in thinslice_suite::all_benchmarks() {
        let a = b.analyze(PtaConfig::default());
        let queries = print_queries(&a.program, &a.csr);
        assert!(!queries.is_empty(), "{}: no print queries", b.name);
        for kind in [SliceKind::Thin, SliceKind::TraditionalData] {
            for seeds in queries.iter().take(3) {
                let full = slice_from(&a.csr, seeds, kind);
                if full.nodes.len() < 2 {
                    continue;
                }
                // Quotas strictly below the full visit count must truncate;
                // a quota of exactly the fixpoint size must not.
                for quota in [1, (full.nodes.len() as u64) / 2] {
                    let out = slice_from_governed(&a.csr, seeds, kind, &steps(quota));
                    assert!(
                        matches!(
                            out.completeness,
                            Completeness::Truncated {
                                reason: ExhaustReason::StepQuota,
                                ..
                            }
                        ),
                        "{}: quota {quota} of {} visits gave {:?}",
                        b.name,
                        full.nodes.len(),
                        out.completeness,
                    );
                    let partial = out.result;
                    assert!(!partial.stmts_in_bfs_order.is_empty(), "{}", b.name);
                    assert!(
                        partial.stmts_in_bfs_order.len() <= full.stmts_in_bfs_order.len(),
                        "{}",
                        b.name
                    );
                    // The governed twin walks in the same order, so the
                    // partial slice is a *prefix*, not just a subset.
                    assert_eq!(
                        partial.stmts_in_bfs_order[..],
                        full.stmts_in_bfs_order[..partial.stmts_in_bfs_order.len()],
                        "{}: {kind:?} truncated slice is not a prefix",
                        b.name
                    );
                    assert!(
                        partial.nodes.iter().all(|n| full.nodes.contains(n)),
                        "{}: truncated slice escaped the full slice",
                        b.name
                    );
                }
            }
        }
    }
}

#[test]
fn unbudgeted_governed_slices_match_the_ungoverned_slicer() {
    for b in thinslice_suite::all_benchmarks() {
        let a = b.analyze(PtaConfig::default());
        let queries = print_queries(&a.program, &a.csr);
        for kind in [
            SliceKind::Thin,
            SliceKind::TraditionalData,
            SliceKind::TraditionalFull,
        ] {
            for seeds in queries.iter().take(2) {
                let full = slice_from(&a.csr, seeds, kind);
                let out = slice_from_governed(&a.csr, seeds, kind, &Budget::unlimited());
                assert!(out.completeness.is_complete(), "{}", b.name);
                assert_eq!(out.result.stmts_in_bfs_order, full.stmts_in_bfs_order);
                assert_eq!(out.result.nodes, full.nodes);
            }
        }
    }
}

#[test]
fn truncated_tabulation_slices_are_nonempty_subsets_of_the_fixpoint() {
    for b in thinslice_suite::all_benchmarks() {
        let a = b.analyze(PtaConfig::default());
        let cs_sdg = a.build_cs_sdg();
        let queries = print_queries(&a.program, &cs_sdg);
        assert!(!queries.is_empty(), "{}: no print queries", b.name);
        for kind in [SliceKind::Thin, SliceKind::TraditionalData] {
            let seeds = &queries[0];
            let full = cs_slice(&cs_sdg, seeds, kind);
            if full.stmts.len() < 2 {
                continue;
            }
            let out = cs_slice_governed(&cs_sdg, seeds, kind, &steps(1));
            assert!(
                matches!(out.completeness, Completeness::Truncated { .. }),
                "{}: {kind:?} quota 1 gave {:?}",
                b.name,
                out.completeness,
            );
            let partial = out.result;
            assert!(!partial.stmts.is_empty(), "{}", b.name);
            assert!(
                partial.stmts.iter().all(|s| full.stmts.contains(s)),
                "{}: truncated tabulation escaped the fixpoint slice",
                b.name
            );
            assert!(
                partial.nodes.iter().all(|n| full.nodes.contains(n)),
                "{}",
                b.name
            );
        }
    }
}

#[test]
fn one_millisecond_deadline_always_returns_outcomes() {
    let b = thinslice_suite::benchmark_named("nanoxml").expect("nanoxml exists");
    let a = b.analyze(PtaConfig::default());
    let queries = print_queries(&a.program, &a.csr);
    let cfg = BatchConfig {
        budget: Budget::unlimited().with_deadline(Duration::from_millis(1)),
        ..BatchConfig::default()
    };
    let outcomes = batch::governed_slices(&a.csr, &queries, SliceKind::Thin, 2, &cfg);
    assert_eq!(outcomes.len(), queries.len());
    for out in &outcomes {
        // Deadline exhaustion is a truncated result, never a hard error.
        let slice = out.slice.as_ref().expect("no worker may panic");
        assert!(!slice.degraded);
        // Either the query finished inside 1 ms or it was truncated by the
        // deadline — both are legitimate outcomes; a hang would have kept
        // this test from ever getting here.
        if let Completeness::Truncated { reason, .. } = slice.completeness {
            assert_eq!(reason, ExhaustReason::Deadline);
        }
    }
}

#[test]
fn exhausted_cs_queries_degrade_to_ci_reachability() {
    let b = thinslice_suite::benchmark_named("nanoxml").expect("nanoxml exists");
    let a = b.analyze(PtaConfig::default());
    let cs_sdg = a.build_cs_sdg();
    let frozen = cs_sdg.freeze();
    let queries = print_queries(&a.program, &frozen);
    let cfg = BatchConfig {
        budget: steps(1),
        ..BatchConfig::default()
    };
    let outcomes = batch::governed_cs_slices(&frozen, &queries, SliceKind::Thin, 2, &cfg);
    assert_eq!(outcomes.len(), queries.len());
    let mut saw_degraded = false;
    for out in &outcomes {
        let slice = out.slice.as_ref().expect("no worker may panic");
        if slice.degraded {
            saw_degraded = true;
            // The CI fallback answered from the same frozen graph; with a
            // one-step budget it is itself truncated but non-empty.
            assert!(!slice.stmts.is_empty());
            assert!(!slice.completeness.is_complete());
        }
    }
    assert!(saw_degraded, "a one-step budget must exhaust tabulation");
}

#[test]
fn injected_worker_panic_cannot_corrupt_sibling_queries() {
    let b = thinslice_suite::benchmark_named("nanoxml").expect("nanoxml exists");
    let a = b.analyze(PtaConfig::default());
    let queries = print_queries(&a.program, &a.csr);
    assert!(queries.len() >= 3, "need at least three queries");

    let clean = batch::governed_slices(
        &a.csr,
        &queries,
        SliceKind::Thin,
        2,
        &BatchConfig::default(),
    );

    // The faulty query panics on every allowed attempt (2 > 1 retry).
    let cfg = BatchConfig {
        fault: Some(FaultInjection {
            query: 1,
            attempts: 2,
        }),
        retries: 1,
        ..BatchConfig::default()
    };
    let faulty = batch::governed_slices(&a.csr, &queries, SliceKind::Thin, 2, &cfg);
    assert_eq!(faulty.len(), clean.len());
    for (i, (got, want)) in faulty.iter().zip(&clean).enumerate() {
        if i == 1 {
            assert_eq!(got.retries, 1);
            assert!(
                matches!(&got.slice, Err(QueryError::Panicked { message })
                    if message.contains("injected worker fault")),
                "query 1 must fail: {:?}",
                got.slice
            );
            continue;
        }
        let (got, want) = (
            got.slice.as_ref().expect("sibling must succeed"),
            want.slice.as_ref().expect("clean run must succeed"),
        );
        // Bit-identical siblings: the panic and the scratch replacement
        // leaked nothing into other workers.
        assert_eq!(got.stmts, want.stmts, "query {i}");
        assert_eq!(got.nodes, want.nodes, "query {i}");
        assert!(got.completeness.is_complete());
    }
}

#[test]
fn a_retry_on_fresh_scratch_recovers_from_a_transient_panic() {
    let b = thinslice_suite::benchmark_named("nanoxml").expect("nanoxml exists");
    let a = b.analyze(PtaConfig::default());
    let queries = print_queries(&a.program, &a.csr);
    let clean = batch::governed_slices(
        &a.csr,
        &queries,
        SliceKind::Thin,
        2,
        &BatchConfig::default(),
    );
    // One panic, one allowed retry: the query recovers with an identical
    // result on fresh scratch.
    let cfg = BatchConfig {
        fault: Some(FaultInjection {
            query: 0,
            attempts: 1,
        }),
        retries: 1,
        ..BatchConfig::default()
    };
    let outcomes = batch::governed_slices(&a.csr, &queries, SliceKind::Thin, 2, &cfg);
    let recovered = outcomes[0].slice.as_ref().expect("retry must succeed");
    let want = clean[0].slice.as_ref().unwrap();
    assert_eq!(outcomes[0].retries, 1);
    assert_eq!(recovered.stmts, want.stmts);
    assert_eq!(recovered.nodes, want.nodes);
}

#[test]
fn fail_fast_cancels_the_queries_after_a_hard_failure() {
    let b = thinslice_suite::benchmark_named("nanoxml").expect("nanoxml exists");
    let a = b.analyze(PtaConfig::default());
    let queries = print_queries(&a.program, &a.csr);
    assert!(queries.len() >= 3);
    // One worker, so queries run in order and the cancellation from query
    // 0's hard failure deterministically precedes every later query.
    let cfg = BatchConfig {
        fault: Some(FaultInjection {
            query: 0,
            attempts: 2,
        }),
        retries: 1,
        fail_fast: true,
        ..BatchConfig::default()
    };
    let outcomes = batch::governed_slices(&a.csr, &queries, SliceKind::Thin, 1, &cfg);
    assert!(outcomes[0].slice.is_err());
    for (i, out) in outcomes.iter().enumerate().skip(1) {
        let slice = out.slice.as_ref().expect("cancelled, not failed");
        assert!(
            matches!(
                slice.completeness,
                Completeness::Truncated {
                    reason: ExhaustReason::Cancelled,
                    ..
                }
            ),
            "query {i}: {:?}",
            slice.completeness
        );
    }
}
