//! Resource governance across the pipeline: budget-exhausted queries
//! return sound truncated prefixes (never panics or hangs), context-
//! sensitive queries degrade to context-insensitive reachability, and a
//! panicking worker in a batch cannot corrupt its siblings.

use std::time::Duration;
use thinslice::batch::FaultInjection;
use thinslice::{
    AnalysisSession, BatchOptions, Budget, Completeness, Engine, ExhaustReason, Query, QueryError,
    QueryPolicy, RunCtx, SliceKind,
};
use thinslice_ir::{InstrKind, Program, StmtRef};
use thinslice_pta::PtaConfig;

/// One single-statement seed per print statement of the program.
fn print_seeds(program: &Program) -> Vec<Vec<StmtRef>> {
    program
        .all_stmts()
        .filter(|s| matches!(program.instr(*s).kind, InstrKind::Print { .. }))
        .map(|s| vec![s])
        .collect()
}

fn queries(program: &Program, kind: SliceKind, engine: Engine) -> Vec<Query> {
    print_seeds(program)
        .into_iter()
        .map(|seeds| Query::new(seeds, kind, engine))
        .collect()
}

fn steps(n: u64) -> Budget {
    Budget::unlimited().with_step_limit(n)
}

fn budgeted(budget: Budget) -> QueryPolicy {
    QueryPolicy {
        budget: Some(budget),
        ..QueryPolicy::default()
    }
}

fn nanoxml_session() -> AnalysisSession {
    thinslice_suite::benchmark_named("nanoxml")
        .expect("nanoxml exists")
        .session(PtaConfig::default(), RunCtx::disabled())
}

#[test]
fn truncated_bfs_slices_are_nonempty_prefixes_of_the_full_slice() {
    for b in thinslice_suite::all_benchmarks() {
        let mut s = b.session(PtaConfig::default(), RunCtx::disabled());
        for kind in [SliceKind::Thin, SliceKind::TraditionalData] {
            let qs = queries(s.program(), kind, Engine::Ci);
            assert!(!qs.is_empty(), "{}: no print queries", b.name);
            for q in qs.iter().take(3) {
                let full = s.query(q);
                if full.nodes.len() < 2 {
                    continue;
                }
                // Quotas strictly below the full visit count must truncate;
                // a quota of exactly the fixpoint size must not.
                for quota in [1, (full.nodes.len() as u64) / 2] {
                    let partial = s.query(&q.clone().with_policy(budgeted(steps(quota))));
                    assert!(
                        matches!(
                            partial.completeness,
                            Completeness::Truncated {
                                reason: ExhaustReason::StepQuota,
                                ..
                            }
                        ),
                        "{}: quota {quota} of {} visits gave {:?}",
                        b.name,
                        full.nodes.len(),
                        partial.completeness,
                    );
                    assert!(!partial.stmts.is_empty(), "{}", b.name);
                    assert!(partial.stmts.len() <= full.stmts.len(), "{}", b.name);
                    // The governed run walks in the same order, so the
                    // partial slice is a *prefix*, not just a subset.
                    assert_eq!(
                        partial.stmts.in_order(),
                        &full.stmts.in_order()[..partial.stmts.len()],
                        "{}: {kind:?} truncated slice is not a prefix",
                        b.name
                    );
                    assert!(
                        partial.nodes.iter().all(|n| full.nodes.contains(n)),
                        "{}: truncated slice escaped the full slice",
                        b.name
                    );
                }
            }
        }
    }
}

#[test]
fn unbudgeted_governed_slices_match_the_ungoverned_slicer() {
    for b in thinslice_suite::all_benchmarks() {
        let mut s = b.session(PtaConfig::default(), RunCtx::disabled());
        for kind in [
            SliceKind::Thin,
            SliceKind::TraditionalData,
            SliceKind::TraditionalFull,
        ] {
            let qs = queries(s.program(), kind, Engine::Ci);
            for q in qs.iter().take(2) {
                let full = s.query(q);
                let governed = s.query(&q.clone().with_policy(budgeted(Budget::unlimited())));
                assert!(governed.completeness.is_complete(), "{}", b.name);
                assert_eq!(governed.stmts, full.stmts);
                assert_eq!(governed.nodes, full.nodes);
            }
        }
    }
}

#[test]
fn truncated_tabulation_slices_are_nonempty_subsets_of_the_fixpoint() {
    for b in thinslice_suite::all_benchmarks() {
        let mut s = b.session(PtaConfig::default(), RunCtx::disabled());
        for kind in [SliceKind::Thin, SliceKind::TraditionalData] {
            let qs = queries(s.program(), kind, Engine::Cs);
            assert!(!qs.is_empty(), "{}: no print queries", b.name);
            let q = &qs[0];
            let full = s.query(q);
            if full.stmts.len() < 2 {
                continue;
            }
            // degrade=false pins the truncated tabulation result instead of
            // falling back to context-insensitive reachability.
            let partial = s.query(&q.clone().with_policy(QueryPolicy {
                budget: Some(steps(1)),
                degrade: false,
            }));
            assert_eq!(partial.engine, Engine::Cs, "{}", b.name);
            assert!(
                matches!(partial.completeness, Completeness::Truncated { .. }),
                "{}: {kind:?} quota 1 gave {:?}",
                b.name,
                partial.completeness,
            );
            assert!(!partial.stmts.is_empty(), "{}", b.name);
            assert!(
                partial.stmts.iter().all(|st| full.stmts.contains(*st)),
                "{}: truncated tabulation escaped the fixpoint slice",
                b.name
            );
            assert!(
                partial.nodes.iter().all(|n| full.nodes.contains(n)),
                "{}",
                b.name
            );
        }
    }
}

#[test]
fn one_millisecond_deadline_always_returns_outcomes() {
    let mut s = nanoxml_session();
    let policy = budgeted(Budget::unlimited().with_deadline(Duration::from_millis(1)));
    let qs: Vec<Query> = queries(s.program(), SliceKind::Thin, Engine::Ci)
        .into_iter()
        .map(|q| q.with_policy(policy.clone()))
        .collect();
    let outcomes = s.query_batch(&qs, 2);
    assert_eq!(outcomes.len(), qs.len());
    for out in &outcomes {
        // Deadline exhaustion is a truncated result, never a hard error.
        let slice = out.slice.as_ref().expect("no worker may panic");
        assert!(!slice.degraded);
        // Either the query finished inside 1 ms or it was truncated by the
        // deadline — both are legitimate outcomes; a hang would have kept
        // this test from ever getting here.
        if let Completeness::Truncated { reason, .. } = slice.completeness {
            assert_eq!(reason, ExhaustReason::Deadline);
        }
    }
}

#[test]
fn exhausted_cs_queries_degrade_to_ci_reachability() {
    let mut s = nanoxml_session();
    let policy = budgeted(steps(1));
    let qs: Vec<Query> = queries(s.program(), SliceKind::Thin, Engine::Cs)
        .into_iter()
        .map(|q| q.with_policy(policy.clone()))
        .collect();
    let outcomes = s.query_batch(&qs, 2);
    assert_eq!(outcomes.len(), qs.len());
    let mut saw_degraded = false;
    for out in &outcomes {
        let slice = out.slice.as_ref().expect("no worker may panic");
        if slice.degraded {
            saw_degraded = true;
            // The CI fallback answered from the same frozen graph; with a
            // one-step budget it is itself truncated but non-empty.
            assert_eq!(slice.engine, Engine::Ci);
            assert!(!slice.stmts.is_empty());
            assert!(!slice.completeness.is_complete());
        }
    }
    assert!(saw_degraded, "a one-step budget must exhaust tabulation");
}

#[test]
fn injected_worker_panic_cannot_corrupt_sibling_queries() {
    let mut s = nanoxml_session();
    let qs = queries(s.program(), SliceKind::Thin, Engine::Ci);
    assert!(qs.len() >= 3, "need at least three queries");

    let clean = s.query_batch(&qs, 2);

    // The faulty query panics on every allowed attempt (2 > 1 retry).
    let opts = BatchOptions {
        fault: Some(FaultInjection {
            query: 1,
            attempts: 2,
        }),
        retries: Some(1),
        ..BatchOptions::default()
    };
    let faulty = s.query_batch_with(&qs, 2, &opts);
    assert_eq!(faulty.len(), clean.len());
    for (i, (got, want)) in faulty.iter().zip(&clean).enumerate() {
        if i == 1 {
            assert_eq!(got.retries, 1);
            assert!(
                matches!(&got.slice, Err(QueryError::Panicked { message })
                    if message.contains("injected worker fault")),
                "query 1 must fail: {:?}",
                got.slice
            );
            continue;
        }
        let (got, want) = (
            got.slice.as_ref().expect("sibling must succeed"),
            want.slice.as_ref().expect("clean run must succeed"),
        );
        // Bit-identical siblings: the panic and the scratch replacement
        // leaked nothing into other workers.
        assert_eq!(got.stmts, want.stmts, "query {i}");
        assert_eq!(got.nodes, want.nodes, "query {i}");
        assert!(got.completeness.is_complete());
    }
}

#[test]
fn a_retry_on_fresh_scratch_recovers_from_a_transient_panic() {
    let mut s = nanoxml_session();
    let qs = queries(s.program(), SliceKind::Thin, Engine::Ci);
    let clean = s.query_batch(&qs, 2);
    // One panic, one allowed retry: the query recovers with an identical
    // result on fresh scratch.
    let opts = BatchOptions {
        fault: Some(FaultInjection {
            query: 0,
            attempts: 1,
        }),
        retries: Some(1),
        ..BatchOptions::default()
    };
    let outcomes = s.query_batch_with(&qs, 2, &opts);
    let recovered = outcomes[0].slice.as_ref().expect("retry must succeed");
    let want = clean[0].slice.as_ref().unwrap();
    assert_eq!(outcomes[0].retries, 1);
    assert_eq!(recovered.stmts, want.stmts);
    assert_eq!(recovered.nodes, want.nodes);
}

#[test]
fn fail_fast_cancels_the_queries_after_a_hard_failure() {
    let mut s = nanoxml_session();
    let qs = queries(s.program(), SliceKind::Thin, Engine::Ci);
    assert!(qs.len() >= 3);
    // One worker, so queries run in order and the cancellation from query
    // 0's hard failure deterministically precedes every later query.
    let opts = BatchOptions {
        fault: Some(FaultInjection {
            query: 0,
            attempts: 2,
        }),
        retries: Some(1),
        fail_fast: true,
    };
    let outcomes = s.query_batch_with(&qs, 1, &opts);
    assert!(outcomes[0].slice.is_err());
    for (i, out) in outcomes.iter().enumerate().skip(1) {
        let slice = out.slice.as_ref().expect("cancelled, not failed");
        assert!(
            matches!(
                slice.completeness,
                Completeness::Truncated {
                    reason: ExhaustReason::Cancelled,
                    ..
                }
            ),
            "query {i}: {:?}",
            slice.completeness
        );
    }
}
