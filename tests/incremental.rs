//! Incremental re-analysis must be invisible in the answers: a session
//! that lives through an edit script via [`AnalysisSession::update`]
//! answers every query bit-for-bit like a session built from scratch on
//! the edited sources — for both engines, all three slice kinds, and
//! every suite benchmark. The only visible difference is *work*: the
//! update stats must show edit-sized invalidation, not a hidden rebuild.
//!
//! Why equivalence holds by construction: every reused artifact (solver
//! state, dependence graphs, frozen CSR, tabulation memos) is a
//! deterministic, span-free function of inputs the diff proved unchanged,
//! and every invalidated artifact is recomputed by the same deterministic
//! pipeline a fresh session runs. These tests pin that argument against
//! the randomized edit generator.

use thinslice::{AnalysisSession, Engine, Query, SliceKind, UpdateStats};
use thinslice_ir::InstrKind;
use thinslice_suite::edits::EditScript;

const KINDS: [SliceKind; 3] = [
    SliceKind::Thin,
    SliceKind::TraditionalData,
    SliceKind::TraditionalFull,
];

fn owned(sources: &[(&str, &str)]) -> Vec<(String, String)> {
    sources
        .iter()
        .map(|(n, t)| ((*n).to_string(), (*t).to_string()))
        .collect()
}

fn refs(sources: &[(String, String)]) -> Vec<(&str, &str)> {
    sources
        .iter()
        .map(|(n, t)| (n.as_str(), t.as_str()))
        .collect()
}

/// Up to `n` single-statement print seeds of the session's program.
fn print_seeds(s: &AnalysisSession, n: usize) -> Vec<thinslice_ir::StmtRef> {
    let program = s.program();
    program
        .all_stmts()
        .filter(|st| matches!(program.instr(*st).kind, InstrKind::Print { .. }))
        .take(n)
        .collect()
}

/// Asserts `live` (a session that has been updated) and a fresh session
/// over the same sources answer identically on every engine × kind over
/// up to `seeds` print seeds. Returns the number of queries compared.
fn assert_matches_fresh(
    live: &mut AnalysisSession,
    sources: &[(String, String)],
    seeds: usize,
    ctx: &str,
) -> usize {
    let mut fresh = AnalysisSession::new(&refs(sources)).expect("edited sources compile");
    let mut compared = 0;
    for seed in print_seeds(&fresh, seeds) {
        for engine in [Engine::Ci, Engine::Cs] {
            for kind in KINDS {
                let q = Query::new(vec![seed], kind, engine);
                let got = live.query(&q);
                let want = fresh.query(&q);
                assert_eq!(got.stmts, want.stmts, "{ctx}: {engine:?} {kind:?} stmts");
                assert_eq!(got.nodes, want.nodes, "{ctx}: {engine:?} {kind:?} nodes");
                assert_eq!(
                    got.completeness, want.completeness,
                    "{ctx}: {engine:?} {kind:?} completeness"
                );
                compared += 1;
            }
        }
    }
    compared
}

#[test]
fn updates_match_rebuilds_on_all_benchmarks_under_random_edits() {
    for b in thinslice_suite::all_benchmarks() {
        let mut sources = owned(&b.sources);
        let mut live = AnalysisSession::new(&refs(&sources)).expect("benchmark compiles");
        // Warm both engines so every later update has artifacts to keep
        // or invalidate.
        assert!(assert_matches_fresh(&mut live, &sources, 1, b.name) > 0);
        let mut gen = EditScript::new(0xC0FFEE ^ b.name.len() as u64);
        for round in 0..3 {
            let (next, edit) = gen.step(&sources);
            let stats = live
                .update(&refs(&next))
                .unwrap_or_else(|e| panic!("{} round {round} ({edit:?}): {e}", b.name));
            assert!(stats.methods_total > 0);
            let ctx = format!("{} round {round} ({:?})", b.name, edit.kind);
            assert!(
                assert_matches_fresh(&mut live, &next, 2, &ctx) > 0,
                "{ctx}: no print seeds"
            );
            sources = next;
        }
    }
}

/// A single-method body edit on the largest benchmark must re-solve and
/// re-freeze strictly less than the whole program — the acceptance bar
/// for "edit-sized" invalidation, asserted through [`UpdateStats`].
#[test]
fn body_edit_on_largest_benchmark_does_strictly_less_work() {
    let b = thinslice_suite::benchmark_named("javac").expect("javac is in the suite");
    let sources = owned(&b.sources);
    let mut live = AnalysisSession::new(&refs(&sources)).expect("javac compiles");
    // Warm every stage: CI and CS queries build graphs, CSR and memos.
    assert!(assert_matches_fresh(&mut live, &sources, 2, "warmup") > 0);

    // Edit 1: tweak one integer literal in place. The constraint stream is
    // literal-value-erased, so everything downstream of the diff is kept.
    let (file, text) = &sources[0];
    let tweaked = text.replacen("= 0;", "= 7;", 1);
    assert_ne!(&tweaked, text, "javac has an `= 0;` initializer to tweak");
    let edited1 = vec![(file.clone(), tweaked)];
    let s1: UpdateStats = live.update(&refs(&edited1)).expect("tweak compiles");
    assert!(!s1.noop && !s1.structural && !s1.undiffed, "body-only edit");
    assert_eq!(s1.methods_changed, 1, "one method changed");
    assert!(s1.methods_total > 10, "javac is not a toy");
    assert!(s1.pta_reused, "literal tweaks keep the solver");
    assert_eq!(s1.constraints_retracted, 0);
    assert_eq!(s1.csr_segments_refrozen, 0, "graphs unchanged, CSR kept");
    assert_eq!(s1.memo_entries_invalidated, 0, "memos survive");
    assert!(s1.memo_entries_kept > 0, "warmup populated memos");
    assert!(
        s1.control_deps_recomputed <= 1 && s1.control_deps_reused > 0,
        "only the edited method's control deps recomputed: {s1:?}"
    );
    assert!(assert_matches_fresh(&mut live, &edited1, 2, "after tweak") > 0);

    // Edit 2: insert a statement into one method body. Graphs change, so
    // the CSR refreezes (all-or-nothing by design), but constraint work
    // and control-dependence recomputation stay edit-sized.
    let brace = edited1[0].1.find(") {").expect("a method header") + 3;
    let mut inserted = edited1[0].1.clone();
    inserted.insert_str(brace, "\nint freshLocal = 1;");
    let edited2 = vec![(file.clone(), inserted)];
    let s2: UpdateStats = live.update(&refs(&edited2)).expect("insert compiles");
    assert!(!s2.noop && !s2.structural && !s2.undiffed, "body-only edit");
    assert_eq!(s2.methods_changed, 1);
    assert!(
        s2.constraints_retracted < s2.constraints_total,
        "re-solve is edit-sized: {s2:?}"
    );
    assert!(
        s2.control_deps_recomputed < s2.methods_total as u64 && s2.control_deps_reused > 0,
        "control deps recomputed only where invalidated: {s2:?}"
    );
    assert!(assert_matches_fresh(&mut live, &edited2, 2, "after insert") > 0);
}

/// A no-op edit (new comment line) must keep every artifact: the cheapest
/// path through `update`, pinned on a real benchmark.
#[test]
fn comment_edits_are_free_on_a_benchmark() {
    let b = thinslice_suite::benchmark_named("nanoxml").expect("nanoxml is in the suite");
    let sources = owned(&b.sources);
    let mut live = AnalysisSession::new(&refs(&sources)).expect("nanoxml compiles");
    assert!(assert_matches_fresh(&mut live, &sources, 2, "warmup") > 0);
    let commented = vec![(
        sources[0].0.clone(),
        format!("// an explanatory comment\n{}", sources[0].1),
    )];
    let stats = live.update(&refs(&commented)).expect("comment compiles");
    assert!(stats.noop, "comment edits diff to nothing: {stats:?}");
    assert_eq!(stats.methods_changed, 0);
    assert_eq!(stats.csr_segments_refrozen, 0);
    assert_eq!(stats.memo_entries_invalidated, 0);
    // Seeds shifted by one line but answers are identical.
    assert!(assert_matches_fresh(&mut live, &commented, 2, "after comment") > 0);
}
