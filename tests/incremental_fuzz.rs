//! Fuzz-ish property: *any* seeded edit script, applied round by round
//! through [`AnalysisSession::update`], leaves the session answering
//! bit-for-bit like a from-scratch rebuild of the final sources — no
//! matter how the script interleaves no-op, body-only, and structural
//! edits, and no matter which stages each round's update chose to keep.
//!
//! The per-round cross-product lives in `tests/incremental.rs`; this
//! suite trades per-round breadth for script *length* and seed diversity,
//! because invalidation bugs compound: a stale artifact kept in round k
//! only surfaces in a later round that rebuilds on top of it.

use thinslice::{AnalysisSession, Engine, Query, SliceKind};
use thinslice_ir::InstrKind;
use thinslice_suite::edits::EditScript;

fn owned(sources: &[(&str, &str)]) -> Vec<(String, String)> {
    sources
        .iter()
        .map(|(n, t)| ((*n).to_string(), (*t).to_string()))
        .collect()
}

fn refs(sources: &[(String, String)]) -> Vec<(&str, &str)> {
    sources
        .iter()
        .map(|(n, t)| (n.as_str(), t.as_str()))
        .collect()
}

/// Thin slices from up to 3 print seeds, for both engines, rendered to a
/// comparable form.
fn answers(s: &mut AnalysisSession) -> Vec<String> {
    let seeds: Vec<_> = {
        let program = s.program();
        program
            .all_stmts()
            .filter(|st| matches!(program.instr(*st).kind, InstrKind::Print { .. }))
            .take(3)
            .collect()
    };
    let mut out = Vec::new();
    for seed in seeds {
        for engine in [Engine::Ci, Engine::Cs] {
            let r = s.query(&Query::new(vec![seed], SliceKind::Thin, engine));
            // `nodes` is a set: sort before rendering so hash iteration
            // order (which tracks insertion history, not the answer)
            // cannot fail the comparison.
            let mut nodes: Vec<_> = r.nodes.iter().copied().collect();
            nodes.sort_unstable();
            out.push(format!(
                "{engine:?} {:?} {:?} {nodes:?}",
                r.completeness,
                r.stmts.in_order(),
            ));
        }
    }
    out
}

#[test]
fn long_edit_scripts_keep_updates_equivalent_to_rebuilds() {
    for name in ["nanoxml", "jtopas"] {
        let b = thinslice_suite::benchmark_named(name).expect("suite benchmark");
        for seed in [1u64, 0xFEED] {
            let mut sources = owned(&b.sources);
            let mut live = AnalysisSession::new(&refs(&sources)).expect("compiles");
            // Warm both engines before the script starts.
            let _ = answers(&mut live);
            let mut gen = EditScript::new(seed);
            for round in 0..10 {
                let (next, edit) = gen.step(&sources);
                live.update(&refs(&next))
                    .unwrap_or_else(|e| panic!("{name} seed {seed} round {round} ({edit:?}): {e}"));
                let mut fresh = AnalysisSession::new(&refs(&next)).expect("compiles");
                assert_eq!(
                    answers(&mut live),
                    answers(&mut fresh),
                    "{name} seed {seed} round {round} ({edit:?})"
                );
                sources = next;
            }
        }
    }
}
