//! The paper's four headline claims (§6), each as an executable test.

use thinslice_pta::{ModRef, ProgramStats, PtaConfig};
use thinslice_sdg::{build_cs, SdgStats};

/// Claim 1 (§6.2, §6.3): "thin slices usually included the desired
/// statements for the tasks".
#[test]
fn claim1_thin_slices_contain_the_desired_statements() {
    let bug_rows = thinslice_bench_rows(&thinslice_suite::all_bug_tasks());
    let found = bug_rows.iter().filter(|r| r.thin.found).count();
    assert_eq!(
        found,
        bug_rows.len(),
        "every sliceable bug must be findable with thin slicing (+expansion)"
    );
    let cast_rows = thinslice_bench_rows(&thinslice_suite::all_cast_tasks());
    let found = cast_rows.iter().filter(|r| r.thin.found).count();
    assert_eq!(
        found,
        cast_rows.len(),
        "every tough cast must be explainable"
    );
}

/// Claim 2 (§6.2, §6.3): thin slicing needs fewer inspected statements than
/// traditional slicing, in aggregate.
#[test]
fn claim2_thin_beats_traditional_in_aggregate() {
    for tasks in [
        thinslice_suite::all_bug_tasks(),
        thinslice_suite::all_cast_tasks(),
    ] {
        let rows = thinslice_bench_rows(&tasks);
        let thin: usize = rows.iter().map(|r| r.thin.inspected).sum();
        let trad: usize = rows.iter().map(|r| r.trad.inspected).sum();
        assert!(
            trad as f64 >= 1.3 * thin as f64,
            "aggregate advantage must be substantial: thin={thin} trad={trad}"
        );
        // Full-slice sizes (the classical measure) separate even more.
        let thin_full: usize = rows.iter().map(|r| r.thin.full_slice).sum();
        let trad_full: usize = rows.iter().map(|r| r.trad.full_slice).sum();
        assert!(
            trad_full as f64 >= 1.5 * thin_full as f64,
            "full-slice advantage: thin={thin_full} trad={trad_full}"
        );
    }
}

/// Claim 3 (§6.1): "a precise pointer analysis is key to effective thin
/// slicing" — dropping object-sensitive container handling inflates the
/// inspected counts.
#[test]
fn claim3_object_sensitivity_matters() {
    let rows = thinslice_bench_rows(&thinslice_suite::all_cast_tasks());
    let thin: usize = rows.iter().map(|r| r.thin.inspected).sum();
    let thin_no: usize = rows.iter().map(|r| r.thin_noobjsens.inspected).sum();
    assert!(
        thin_no > thin,
        "NoObjSens must inspect more statements: precise={thin} coarse={thin_no}"
    );
    // Per-row: some rows degrade measurably (the paper's jack rows).
    let degraded = rows
        .iter()
        .filter(|r| r.thin_noobjsens.inspected as f64 >= 1.2 * r.thin.inspected as f64)
        .count();
    assert!(
        degraded >= 3,
        "several rows must degrade without object sensitivity"
    );
}

/// Claim 4 (§6.1): context-insensitive thin slicing is cheap; the
/// heap-parameter (context-sensitive) representation explodes with program
/// size.
#[test]
fn claim4_scalability() {
    use std::time::Instant;
    let b = thinslice_suite::benchmark_named("javac").unwrap();
    let program = thinslice_ir::compile(&b.sources).unwrap();

    let t0 = Instant::now();
    let pta = thinslice_pta::Pta::analyze(&program, PtaConfig::default());
    let pta_time = t0.elapsed();

    let sdg = thinslice_sdg::build_ci(&program, &pta);
    let seed = program
        .all_stmts()
        .find(|s| {
            matches!(
                program.instr(*s).kind,
                thinslice_ir::InstrKind::Print { .. }
            )
        })
        .and_then(|s| sdg.stmt_node(s))
        .unwrap();
    let t1 = Instant::now();
    // Times the raw node-level slicer on the hand-built SDG so the
    // comparison excludes session bookkeeping.
    #[allow(deprecated)]
    let _ = thinslice::slice_from(&sdg, &[seed], thinslice::SliceKind::Thin);
    let slice_time = t1.elapsed();
    assert!(
        slice_time < pta_time,
        "one thin slice must cost less than the pointer analysis \
         (slice {slice_time:?} vs pta {pta_time:?})"
    );

    // Heap-parameter blow-up grows superlinearly with generated program
    // size.
    let small = cs_nodes_of_generated(1);
    let big = cs_nodes_of_generated(3);
    let small_ci = ci_nodes_of_generated(1);
    let big_ci = ci_nodes_of_generated(3);
    let cs_growth = big as f64 / small as f64;
    let ci_growth = big_ci as f64 / small_ci as f64;
    assert!(
        cs_growth > ci_growth,
        "heap parameters must grow faster than the CI graph: cs {cs_growth:.1}x vs ci {ci_growth:.1}x"
    );
}

/// Table 1's caption: call-graph nodes exceed distinct methods due to
/// cloning, on every benchmark.
#[test]
fn table1_cloning_shows_on_every_benchmark() {
    for b in thinslice_suite::all_benchmarks() {
        let a = b.analyze(PtaConfig::default());
        let stats = ProgramStats::compute(&a.program, &a.pta);
        assert!(stats.cg_nodes > stats.methods, "{}: {stats:?}", b.name);
        // And the coarse configuration has exactly one node per method.
        let coarse = b.analyze(PtaConfig::without_object_sensitivity());
        let cstats = ProgramStats::compute(&coarse.program, &coarse.pta);
        assert_eq!(cstats.cg_nodes, cstats.methods, "{}", b.name);
    }
}

fn thinslice_bench_rows(tasks: &[thinslice_suite::Task]) -> Vec<thinslice_suite::TaskResult> {
    let mut rows = Vec::new();
    let mut cache: std::collections::HashMap<
        &'static str,
        (
            thinslice_suite::Benchmark,
            thinslice::Analysis,
            thinslice::Analysis,
        ),
    > = std::collections::HashMap::new();
    for task in tasks {
        let entry = cache.entry(task.benchmark).or_insert_with(|| {
            let b = thinslice_suite::benchmark_named(task.benchmark).unwrap();
            let p = b.analyze(PtaConfig::default());
            let n = b.analyze(PtaConfig::without_object_sensitivity());
            (b, p, n)
        });
        rows.push(thinslice_suite::run_task(
            &entry.0, task, &entry.1, &entry.2,
        ));
    }
    rows
}

fn cs_nodes_of_generated(factor: usize) -> usize {
    let src = thinslice_suite::generate(&thinslice_suite::GeneratorConfig::scaled(factor));
    let program = thinslice_ir::compile(&[("gen.mj", &src)]).unwrap();
    let pta = thinslice_pta::Pta::analyze(&program, PtaConfig::default());
    let modref = ModRef::compute(&program, &pta);
    SdgStats::compute(&build_cs(&program, &pta, &modref)).nodes
}

fn ci_nodes_of_generated(factor: usize) -> usize {
    let src = thinslice_suite::generate(&thinslice_suite::GeneratorConfig::scaled(factor));
    let program = thinslice_ir::compile(&[("gen.mj", &src)]).unwrap();
    let pta = thinslice_pta::Pta::analyze(&program, PtaConfig::default());
    SdgStats::compute(&thinslice_sdg::build_ci(&program, &pta)).nodes
}
