//! Property-based tests over generated programs: structural invariants of
//! the whole pipeline that must hold for *any* MJ program the generator can
//! produce.

use thinslice::{Analysis, SliceKind};
use thinslice_pta::PtaConfig;
use thinslice_suite::{generate, GeneratorConfig};
use thinslice_util::SmallRng;

fn arb_config(rng: &mut SmallRng) -> GeneratorConfig {
    GeneratorConfig {
        node_classes: rng.range_usize(1, 6),
        passes: rng.range_usize(1, 3),
        container_chains: rng.range_usize(1, 5),
        call_depth: rng.range_usize(1, 4),
        seed: rng.next_u64() % 1000,
    }
}

/// Every generated program compiles, analyses, and slices without
/// panicking; thin ⊆ data ⊆ full holds for every print seed.
#[test]
fn pipeline_invariants_on_generated_programs() {
    for case in 0..12u64 {
        let config = arb_config(&mut SmallRng::new(case));
        let src = generate(&config);
        let a = Analysis::build(&[("gen.mj", &src)]).expect("generated program compiles");
        let seeds: Vec<_> = a
            .program
            .all_stmts()
            .filter(|s| {
                matches!(
                    a.program.instr(*s).kind,
                    thinslice_ir::InstrKind::Print { .. }
                )
            })
            .filter(|s| !a.sdg.stmt_nodes_of(*s).is_empty())
            .collect();
        assert!(!seeds.is_empty(), "generated programs always print");
        for seed in seeds {
            let thin = a.thin_slice(&[seed]);
            let data = a.traditional_slice(&[seed]);
            let full = a.full_slice(&[seed]);
            assert!(thin.stmt_set().is_subset(&data.stmt_set()));
            assert!(data.stmt_set().is_subset(&full.stmt_set()));
            assert!(thin.contains(seed));
            // BFS order has no duplicates.
            let mut seen = std::collections::HashSet::new();
            for s in &thin.stmts {
                assert!(seen.insert(*s), "duplicate statement in BFS order");
            }
        }
    }
}

/// Slicing is deterministic: two runs over the same program produce the
/// same slices.
#[test]
fn slicing_is_deterministic() {
    for case in 0..8u64 {
        let seed = SmallRng::new(case).next_u64() % 500;
        let config = GeneratorConfig {
            seed,
            ..GeneratorConfig::default()
        };
        let src = generate(&config);
        let a1 = Analysis::build(&[("gen.mj", &src)]).unwrap();
        let a2 = Analysis::build(&[("gen.mj", &src)]).unwrap();
        let seed_stmt = a1
            .program
            .all_stmts()
            .find(|s| {
                matches!(
                    a1.program.instr(*s).kind,
                    thinslice_ir::InstrKind::Print { .. }
                )
            })
            .unwrap();
        let s1 = a1.thin_slice(&[seed_stmt]);
        let s2 = a2.thin_slice(&[seed_stmt]);
        assert_eq!(s1.stmts, s2.stmts);
    }
}

/// Object-sensitivity coarsening is monotone on generated programs.
#[test]
fn coarsening_is_monotone() {
    for case in 0..6u64 {
        let seed = SmallRng::new(case ^ 0xc0a5).next_u64() % 200;
        let config = GeneratorConfig {
            seed,
            container_chains: 3,
            ..GeneratorConfig::default()
        };
        let src = generate(&config);
        let precise = Analysis::build(&[("gen.mj", &src)]).unwrap();
        let coarse =
            Analysis::with_config(&[("gen.mj", &src)], PtaConfig::without_object_sensitivity())
                .unwrap();
        let seed_stmt = precise
            .program
            .all_stmts()
            .find(|s| {
                matches!(
                    precise.program.instr(*s).kind,
                    thinslice_ir::InstrKind::Print { .. }
                )
            })
            .unwrap();
        if coarse.sdg.stmt_nodes_of(seed_stmt).is_empty() {
            continue;
        }
        let p = precise.thin_slice(&[seed_stmt]).stmt_set();
        let c = coarse.thin_slice(&[seed_stmt]).stmt_set();
        assert!(p.is_subset(&c));
    }
}

/// The context-sensitive tabulation result is always a subset of the
/// context-insensitive reachability result, for every slice kind.
#[test]
fn tabulation_is_a_refinement() {
    for case in 0..8u64 {
        let seed = SmallRng::new(case ^ 0x7ab).next_u64() % 200;
        let config = GeneratorConfig {
            seed,
            ..GeneratorConfig::default()
        };
        let src = generate(&config);
        let a = Analysis::build(&[("gen.mj", &src)]).unwrap();
        let seed_stmt = a
            .program
            .all_stmts()
            .find(|s| {
                matches!(
                    a.program.instr(*s).kind,
                    thinslice_ir::InstrKind::Print { .. }
                )
            })
            .unwrap();
        let nodes = a.sdg.stmt_nodes_of(seed_stmt).to_vec();
        for kind in [
            SliceKind::Thin,
            SliceKind::TraditionalData,
            SliceKind::TraditionalFull,
        ] {
            // Tabulation vs reachability on the *same* graph: the session's
            // Cs engine answers from the heap-parameter graph instead, so
            // this refinement check stays on the node-level entrypoints.
            #[allow(deprecated)]
            let ci = thinslice::slice_from(&a.sdg, &nodes, kind);
            #[allow(deprecated)]
            let cs = thinslice::cs_slice(&a.sdg, &nodes, kind);
            assert!(cs.stmts.is_subset(&ci.stmts), "kind {kind:?}");
        }
    }
}
