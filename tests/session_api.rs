//! The unified `AnalysisSession`/`Query` entrypoint is a pure re-plumbing
//! of the legacy free-function cross-product: for every slice kind, both
//! engines, and every suite benchmark, the Query path answers bit-for-bit
//! identically to the deprecated entrypoints it subsumes; governed queries
//! return sound truncations of the full answers; and the batched path is
//! indistinguishable from the sequential one.

use thinslice::{Budget, Completeness, Engine, Query, QueryPolicy, RunCtx, SliceKind};
use thinslice_ir::InstrKind;
use thinslice_pta::PtaConfig;

const KINDS: [SliceKind; 3] = [
    SliceKind::Thin,
    SliceKind::TraditionalData,
    SliceKind::TraditionalFull,
];

/// Up to `n` single-statement print seeds of the program.
fn print_seeds(program: &thinslice_ir::Program, n: usize) -> Vec<thinslice_ir::StmtRef> {
    program
        .all_stmts()
        .filter(|s| matches!(program.instr(*s).kind, InstrKind::Print { .. }))
        .take(n)
        .collect()
}

#[test]
fn ci_queries_match_the_legacy_sparse_slicer_on_all_benchmarks() {
    for b in thinslice_suite::all_benchmarks() {
        let a = b.analyze(PtaConfig::default());
        let mut s = b.session(PtaConfig::default(), RunCtx::disabled());
        for seed in print_seeds(&a.program, 3) {
            let nodes = a.sdg.stmt_nodes_of(seed).to_vec();
            if nodes.is_empty() {
                continue;
            }
            for kind in KINDS {
                #[allow(deprecated)]
                let legacy = thinslice::slice_from(&a.sdg, &nodes, kind);
                let got = s.query(&Query::new(vec![seed], kind, Engine::Ci));
                assert_eq!(got.engine, Engine::Ci);
                assert_eq!(got.kind, kind);
                assert!(got.completeness.is_complete());
                assert!(!got.degraded);
                // Bit-identical: same statements in the same BFS order,
                // same visited node set.
                assert_eq!(got.stmts, legacy.stmts, "{}: {kind:?}", b.name);
                assert_eq!(got.nodes, legacy.nodes, "{}: {kind:?}", b.name);
            }
        }
    }
}

#[test]
fn cs_queries_match_the_legacy_tabulation_on_all_benchmarks() {
    for b in thinslice_suite::all_benchmarks() {
        let a = b.analyze(PtaConfig::default());
        let cs_sdg = a.build_cs_sdg();
        let mut s = b.session(PtaConfig::default(), RunCtx::disabled());
        for seed in print_seeds(&a.program, 2) {
            let nodes = cs_sdg.stmt_nodes_of(seed).to_vec();
            if nodes.is_empty() {
                continue;
            }
            for kind in KINDS {
                #[allow(deprecated)]
                let legacy = thinslice::cs_slice(&cs_sdg, &nodes, kind);
                let got = s.query(&Query::new(vec![seed], kind, Engine::Cs));
                assert_eq!(got.engine, Engine::Cs);
                assert!(got.completeness.is_complete());
                assert!(!got.degraded);
                assert_eq!(got.stmts, legacy.stmts, "{}: {kind:?}", b.name);
                assert_eq!(got.nodes, legacy.nodes, "{}: {kind:?}", b.name);
            }
        }
    }
}

#[test]
fn governed_queries_return_truncated_subsets_of_the_full_answer() {
    for b in thinslice_suite::all_benchmarks() {
        let mut s = b.session(PtaConfig::default(), RunCtx::disabled());
        let seeds = print_seeds(s.program(), 2);
        for seed in seeds {
            for (kind, engine) in [
                (SliceKind::Thin, Engine::Ci),
                (SliceKind::TraditionalData, Engine::Ci),
                (SliceKind::Thin, Engine::Cs),
            ] {
                let q = Query::new(vec![seed], kind, engine);
                let full = s.query(&q);
                if full.nodes.len() < 2 || full.stmts.len() < 2 {
                    continue;
                }
                // The warm tabulation memo makes later CS queries cheap, so
                // only a one-step quota reliably truncates them; the CI BFS
                // has no cross-query memo and truncates at half its visits.
                let quota = match engine {
                    Engine::Ci => full.nodes.len() as u64 / 2,
                    Engine::Cs => 1,
                };
                let policy = QueryPolicy {
                    budget: Some(Budget::unlimited().with_step_limit(quota)),
                    degrade: false,
                };
                let partial = s.query(&q.clone().with_policy(policy));
                assert!(
                    matches!(partial.completeness, Completeness::Truncated { .. }),
                    "{}: {kind:?}/{engine:?} gave {:?}",
                    b.name,
                    partial.completeness
                );
                assert!(!partial.stmts.is_empty(), "{}", b.name);
                assert!(
                    partial.stmts.is_subset(&full.stmts),
                    "{}: {kind:?}/{engine:?} truncated slice escaped the full slice",
                    b.name
                );
                if engine == Engine::Ci {
                    // The governed BFS walks in the same order, so the CI
                    // truncation is a *prefix* of the full answer.
                    assert_eq!(
                        partial.stmts.in_order(),
                        &full.stmts.in_order()[..partial.stmts.len()],
                        "{}: {kind:?} truncation is not a prefix",
                        b.name
                    );
                }
            }
        }
    }
}

#[test]
fn batched_queries_match_sequential_queries_on_all_benchmarks() {
    for b in thinslice_suite::all_benchmarks() {
        let mut s = b.session(PtaConfig::default(), RunCtx::disabled());
        // A mixed batch: every kind on both engines for every seed, so the
        // batch path has to group by (engine, kind) and reassemble.
        let mut queries = Vec::new();
        for seed in print_seeds(s.program(), 2) {
            for kind in KINDS {
                queries.push(Query::new(vec![seed], kind, Engine::Ci));
                queries.push(Query::new(vec![seed], kind, Engine::Cs));
            }
        }
        let sequential: Vec<_> = queries.iter().map(|q| s.query(q)).collect();
        for threads in [1, 2, 4, 8] {
            let batched = s.query_batch(&queries, threads);
            assert_eq!(batched.len(), sequential.len());
            for (i, (got, want)) in batched.iter().zip(&sequential).enumerate() {
                let got = got.slice.as_ref().expect("ungoverned batch never fails");
                assert_eq!(
                    got.stmts, want.stmts,
                    "{}: query {i} at {threads} threads",
                    b.name
                );
                assert_eq!(got.nodes, want.nodes, "{}: query {i}", b.name);
                assert_eq!(got.engine, want.engine, "{}: query {i}", b.name);
                assert_eq!(got.completeness, want.completeness, "{}: query {i}", b.name);
            }
        }
    }
}

#[test]
fn a_fresh_session_answers_like_a_warm_one() {
    // Cache invariant: memoised artifacts (scratch, tabulation exit memo)
    // never change answers — a session that has already answered other
    // queries agrees with a cold session on every later query.
    let b = thinslice_suite::benchmark_named("nanoxml").expect("nanoxml exists");
    let seeds = {
        let a = b.analyze(PtaConfig::default());
        print_seeds(&a.program, 4)
    };
    let mut warm = b.session(PtaConfig::default(), RunCtx::disabled());
    // Warm the session up on everything once.
    for &seed in &seeds {
        for engine in [Engine::Ci, Engine::Cs] {
            let _ = warm.query(&Query::new(vec![seed], SliceKind::Thin, engine));
        }
    }
    for &seed in &seeds {
        for engine in [Engine::Ci, Engine::Cs] {
            let q = Query::new(vec![seed], SliceKind::Thin, engine);
            let mut cold = b.session(PtaConfig::default(), RunCtx::disabled());
            let want = cold.query(&q);
            let got = warm.query(&q);
            assert_eq!(got.stmts, want.stmts);
            assert_eq!(got.nodes, want.nodes);
        }
    }
}
