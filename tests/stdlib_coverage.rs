//! Exercises every MJ standard-library container method end-to-end:
//! compiled, analysed, sliced and executed — the static and dynamic
//! results must agree per the differential contract.

use thinslice::Analysis;
use thinslice_interp::{dynamic_thin_slice, run, ExecConfig, Outcome};

const WORKOUT: &str = r#"class Main {
    static void main() {
        Vector v = new Vector();
        for (int i = 0; i < 12; i++) {
            v.add("item" + i);
        }
        print(v.size());
        print((String) v.removeAt(0));
        print(v.size());
        if (v.contains(v.get(3))) {
            print("contains works");
        }
        v.set(0, "replaced");
        print((String) v.get(0));

        VectorIterator it = v.iterator();
        int seen = 0;
        while (it.hasNext()) {
            Object o = it.next();
            seen = seen + 1;
        }
        print(seen);

        Stack st = new Stack();
        st.push("bottom");
        st.push("top");
        print((String) st.peek());
        print((String) st.pop());
        print((String) st.pop());

        Hashtable h = new Hashtable();
        h.put("one", "1");
        h.put("two", "2");
        h.put("one", "uno");
        print((String) h.get("one"));
        print(h.size());
        if (h.containsKey("two")) {
            print("key found");
        }
        Vector vals = h.values();
        print(vals.size());

        LinkedList l = new LinkedList();
        l.addFirst("z");
        l.addFirst("y");
        l.addFirst("x");
        print((String) l.get(2));
        print(l.size());
        if (!l.isEmpty()) {
            print("list nonempty");
        }

        StringBuffer sb = new StringBuffer();
        sb.append("ab");
        sb.append("cd");
        print(sb.toString());
    }
}"#;

#[test]
fn container_workout_executes_correctly() {
    let analysis = Analysis::build(&[("workout.mj", WORKOUT)]).unwrap();
    let exec = run(&analysis.program, &ExecConfig::default());
    assert_eq!(exec.outcome, Outcome::Finished, "{:?}", exec.outcome);
    let texts: Vec<&str> = exec.prints.iter().map(|(_, t)| t.as_str()).collect();
    assert_eq!(
        texts,
        vec![
            "12",
            "item0",
            "11",
            "contains works",
            "replaced",
            "11",
            "top",
            "top",
            "bottom",
            "uno",
            "2",
            "key found",
            "2",
            "z",
            "3",
            "list nonempty",
            "abcd",
        ]
    );
}

#[test]
fn container_workout_dynamic_slices_are_subsets() {
    let analysis = Analysis::build(&[("workout.mj", WORKOUT)]).unwrap();
    let exec = run(&analysis.program, &ExecConfig::default());
    for (event, _) in &exec.prints {
        let seed = exec.events[*event].stmt;
        if analysis.sdg.stmt_nodes_of(seed).is_empty() {
            continue;
        }
        let static_thin = analysis.thin_slice(&[seed]).stmt_set();
        let dynamic = dynamic_thin_slice(&exec, *event);
        for s in &dynamic.stmts {
            assert!(
                static_thin.contains(s),
                "dynamic stmt {s:?} missing from static thin slice of {seed:?}"
            );
        }
    }
}

#[test]
fn container_workout_thin_slices_skip_growth_machinery() {
    // Pushing 12 items forces Vector.grow; the grown backing array is a
    // base-pointer concern and its length computation must stay out of the
    // thin slice of a retrieved value.
    let analysis = Analysis::build(&[("workout.mj", WORKOUT)]).unwrap();
    let line = WORKOUT
        .lines()
        .position(|l| l.contains("print((String) v.get(0));"))
        .unwrap() as u32
        + 1;
    let seeds = analysis.seed_at_line("workout.mj", line).unwrap();
    let thin = analysis.thin_slice(&seeds);
    let trad = analysis.traditional_slice(&seeds);
    let vector = analysis.program.class_named("Vector").unwrap();
    let grow = analysis.program.resolve_method(vector, "grow").unwrap();
    let grow_alloc = analysis
        .program
        .all_stmts()
        .find(|s| {
            s.method == grow
                && matches!(
                    analysis.program.instr(*s).kind,
                    thinslice_ir::InstrKind::NewArray { .. }
                )
        })
        .unwrap();
    assert!(
        !thin.contains(grow_alloc),
        "the grown array allocation is container machinery"
    );
    assert!(
        trad.contains(grow_alloc),
        "…which the traditional slice includes"
    );
    // But grow's element-copying store IS a producer (values flow through
    // it when the vector grows).
    let copy_store = analysis
        .program
        .all_stmts()
        .find(|s| {
            s.method == grow
                && matches!(
                    analysis.program.instr(*s).kind,
                    thinslice_ir::InstrKind::ArrayStore { .. }
                )
        })
        .unwrap();
    assert!(
        thin.contains(copy_store),
        "bigger[i] = this.elems[i] copies the value and is a producer"
    );
}
