//! End-to-end telemetry: spans nest and time monotonically, counters
//! aggregate across batch workers, the machine-readable run report
//! round-trips through its hand-rolled JSON parser, governance records
//! budget-exhaustion events, and a disabled handle changes nothing.

use thinslice::{
    Analysis, AnalysisSession, Budget, Engine, Query, QueryPolicy, RunCtx, SliceKind, Telemetry,
};
use thinslice_ir::{Program, StmtRef};
use thinslice_util::telemetry::RUN_REPORT_SCHEMA;
use thinslice_util::RunReport;

const PROGRAM: &str = "class Box { Object item;
    void fill(Object o) { this.item = o; }
    Object take() { return this.item; }
 }
 class Main { static void main() {
    Box b = new Box();
    String s = \"deep\";
    b.fill(s);
    Object got = b.take();
    print(got);
    int x = 3;
    int y = x + 4;
    print(y);
 } }";

fn session(ctx: RunCtx) -> AnalysisSession {
    AnalysisSession::with_ctx(
        &[("t.mj", PROGRAM)],
        thinslice_pta::PtaConfig::default(),
        ctx,
    )
    .unwrap()
}

/// One single-statement seed per print statement of the program.
fn print_seeds(program: &Program) -> Vec<Vec<StmtRef>> {
    program
        .all_stmts()
        .filter(|s| {
            matches!(
                program.instr(*s).kind,
                thinslice_ir::InstrKind::Print { .. }
            )
        })
        .map(|s| vec![s])
        .collect()
}

fn queries(program: &Program, engine: Engine) -> Vec<Query> {
    print_seeds(program)
        .into_iter()
        .map(|seeds| Query::new(seeds, SliceKind::Thin, engine))
        .collect()
}

#[test]
fn pipeline_spans_nest_and_time_monotonically() {
    let tel = Telemetry::enabled();
    let _a = Analysis::with_ctx(
        &[("t.mj", PROGRAM)],
        thinslice_pta::PtaConfig::default(),
        &RunCtx::disabled().with_telemetry(tel.clone()),
    )
    .unwrap();
    let report = tel.report();
    let names: Vec<&str> = report.spans.iter().map(|s| s.name.as_str()).collect();
    for expected in [
        "ir.parse",
        "ir.resolve",
        "ir.lower",
        "ir.ssa",
        "pta.solve",
        "sdg.build",
        "sdg.freeze",
    ] {
        assert!(
            names.contains(&expected),
            "missing span {expected}: {names:?}"
        );
    }
    // Spans are recorded in open order with monotone start offsets, and a
    // closed span never extends past the next sibling's start + duration
    // accounting keeps wall-clock ordering sane.
    for w in report.spans.windows(2) {
        assert!(
            w[0].start_us <= w[1].start_us,
            "span starts must be monotone: {:?}",
            report.spans
        );
    }
    let pta = report.spans.iter().find(|s| s.name == "pta.solve").unwrap();
    let rounds = pta
        .counters
        .iter()
        .find(|(k, _)| k == "pta.delta_rounds")
        .map(|(_, v)| *v)
        .unwrap();
    assert!(rounds > 0, "the solver must pop work");
}

#[test]
fn nested_spans_record_depth() {
    let tel = Telemetry::enabled();
    {
        let _outer = tel.span("outer");
        std::thread::sleep(std::time::Duration::from_millis(1));
        {
            let _inner = tel.span("inner");
        }
    }
    let report = tel.report();
    let outer = report.spans.iter().find(|s| s.name == "outer").unwrap();
    let inner = report.spans.iter().find(|s| s.name == "inner").unwrap();
    assert_eq!(outer.depth, 0);
    assert_eq!(inner.depth, 1);
    assert!(inner.start_us >= outer.start_us);
    assert!(
        outer.dur_us >= inner.dur_us,
        "enclosing span lasts at least as long as its child: outer={} inner={}",
        outer.dur_us,
        inner.dur_us
    );
}

#[test]
fn counters_aggregate_across_batch_workers() {
    let tel = Telemetry::enabled();
    let mut s = session(RunCtx::disabled().with_telemetry(tel.clone()));
    let qs = queries(s.program(), Engine::Ci);
    assert!(qs.len() >= 2);
    // Tile the queries so several workers record concurrently.
    let tiled: Vec<Query> = qs.iter().cycle().take(20).cloned().collect();

    let outcomes = s.query_batch(&tiled, 4);
    let report = tel.report();

    // One latency sample per query, whatever the thread interleaving.
    let h = report.histograms.get("batch.query_us").unwrap();
    assert_eq!(h.count as usize, tiled.len());
    assert!(h.p50 <= h.p95 && h.p95 <= h.max);

    // The shared counter is the exact sum of per-slice node counts.
    let expected: u64 = outcomes
        .iter()
        .map(|o| o.slice.as_ref().unwrap().nodes.len() as u64)
        .sum();
    assert_eq!(report.counters.get("slice.nodes_visited"), Some(&expected));
    assert!(
        report.counters.get("slice.csr_edges_visited").copied() > Some(0),
        "the BFS visits edges: {:?}",
        report.counters
    );
}

#[test]
fn cs_batch_records_memo_hits_and_misses() {
    let tel = Telemetry::enabled();
    let mut s = session(RunCtx::disabled().with_telemetry(tel.clone()));
    let qs = queries(s.program(), Engine::Cs);
    // Repeats of the same queries: later queries splice memoised exit
    // regions, so both hits and misses must show up.
    let tiled: Vec<Query> = qs.iter().cycle().take(3 * qs.len()).cloned().collect();
    let _ = s.query_batch(&tiled, 1);
    let report = tel.report();
    let misses = report
        .counters
        .get("cs.exit_memo_misses")
        .copied()
        .unwrap_or(0);
    let hits = report
        .counters
        .get("cs.exit_memo_hits")
        .copied()
        .unwrap_or(0);
    assert!(
        misses > 0,
        "first encounters must miss: {:?}",
        report.counters
    );
    assert!(
        hits > 0,
        "repeats must hit the exit memo: {:?}",
        report.counters
    );
}

#[test]
fn run_report_round_trips_through_json() {
    let tel = Telemetry::enabled();
    let mut s = session(RunCtx::disabled().with_telemetry(tel.clone()));
    let qs = queries(s.program(), Engine::Ci);
    let _ = s.query_batch(&qs, 2);
    tel.event("test.marker", &[("key", "value \"quoted\"\n".to_string())]);
    let report = tel.report();

    let json = report.to_json();
    assert!(json.contains(RUN_REPORT_SCHEMA));
    let parsed = RunReport::from_json(&json).expect("emitted JSON must parse");
    assert_eq!(parsed, report, "round-trip must be lossless");
}

#[test]
fn governance_records_budget_exhaustion_with_frontier() {
    let tel = Telemetry::enabled();
    let mut s = session(RunCtx::disabled().with_telemetry(tel.clone()));
    let policy = QueryPolicy {
        budget: Some(Budget::unlimited().with_step_limit(1)),
        ..QueryPolicy::default()
    };
    let qs: Vec<Query> = queries(s.program(), Engine::Ci)
        .into_iter()
        .map(|q| q.with_policy(policy.clone()))
        .collect();
    let outcomes = s.query_batch(&qs, 2);
    let truncated = outcomes
        .iter()
        .filter(|o| matches!(&o.slice, Ok(s) if !s.completeness.is_complete()))
        .count();
    assert!(truncated > 0, "a 1-step budget must truncate something");

    let report = tel.report();
    assert_eq!(
        report.counters.get("govern.budget_exhaustions"),
        Some(&(truncated as u64))
    );
    let events: Vec<_> = report
        .events
        .iter()
        .filter(|e| e.name == "govern.budget_exhausted")
        .collect();
    assert_eq!(events.len(), truncated);
    for e in &events {
        assert_eq!(e.field("stage"), Some("slice"));
        assert!(e.field("reason").is_some());
        let frontier: u64 = e
            .field("frontier")
            .expect("event carries the abandoned-frontier size")
            .parse()
            .expect("frontier is a count");
        assert!(frontier > 0, "abandoned work must be reported");
    }
    // Meter checks were counted for every attempted query.
    assert!(report.counters.get("govern.meter_checks").copied() >= Some(1));
    // The per-query latency histogram covers every query.
    let h = report.histograms.get("batch.query_us").unwrap();
    assert_eq!(h.count as usize, qs.len());
}

#[test]
fn disabled_telemetry_changes_nothing() {
    let disabled = Telemetry::disabled();
    assert!(!disabled.is_enabled());

    let mut plain_session = session(RunCtx::disabled());
    let qs = queries(plain_session.program(), Engine::Ci);
    let plain = plain_session.query_batch(&qs, 2);
    let with_disabled =
        session(RunCtx::disabled().with_telemetry(disabled.clone())).query_batch(&qs, 2);
    let with_enabled =
        session(RunCtx::disabled().with_telemetry(Telemetry::enabled())).query_batch(&qs, 2);
    for ((p, d), e) in plain.iter().zip(&with_disabled).zip(&with_enabled) {
        let (p, d, e) = (
            p.slice.as_ref().unwrap(),
            d.slice.as_ref().unwrap(),
            e.slice.as_ref().unwrap(),
        );
        assert_eq!(p.stmts, d.stmts);
        assert_eq!(p.stmts, e.stmts);
        assert_eq!(p.nodes, d.nodes);
        assert_eq!(p.nodes, e.nodes);
    }

    // A disabled handle records nothing — its report is empty.
    let report = disabled.report();
    assert!(report.spans.is_empty());
    assert!(report.counters.is_empty());
    assert!(report.histograms.is_empty());
    assert!(report.events.is_empty());
}
