//! End-to-end telemetry: spans nest and time monotonically, counters
//! aggregate across batch workers, the machine-readable run report
//! round-trips through its hand-rolled JSON parser, governance records
//! budget-exhaustion events, and a disabled handle changes nothing.

use thinslice::batch::{self, BatchConfig};
use thinslice::{Analysis, Budget, SliceKind, Telemetry};
use thinslice_ir::InstrKind;
use thinslice_sdg::{DepGraph, NodeId};
use thinslice_util::telemetry::RUN_REPORT_SCHEMA;
use thinslice_util::RunReport;

const PROGRAM: &str = "class Box { Object item;
    void fill(Object o) { this.item = o; }
    Object take() { return this.item; }
 }
 class Main { static void main() {
    Box b = new Box();
    String s = \"deep\";
    b.fill(s);
    Object got = b.take();
    print(got);
    int x = 3;
    int y = x + 4;
    print(y);
 } }";

fn setup() -> Analysis {
    Analysis::build(&[("t.mj", PROGRAM)]).unwrap()
}

fn print_queries(a: &Analysis) -> Vec<Vec<NodeId>> {
    a.program
        .all_stmts()
        .filter(|s| matches!(a.program.instr(*s).kind, InstrKind::Print { .. }))
        .map(|s| a.csr.stmt_nodes_of(s).to_vec())
        .filter(|nodes| !nodes.is_empty())
        .collect()
}

#[test]
fn pipeline_spans_nest_and_time_monotonically() {
    let tel = Telemetry::enabled();
    let _a = Analysis::with_config_telemetry(
        &[("t.mj", PROGRAM)],
        thinslice_pta::PtaConfig::default(),
        &tel,
    )
    .unwrap();
    let report = tel.report();
    let names: Vec<&str> = report.spans.iter().map(|s| s.name.as_str()).collect();
    for expected in [
        "ir.parse",
        "ir.resolve",
        "ir.lower",
        "ir.ssa",
        "pta.solve",
        "sdg.build",
        "sdg.freeze",
    ] {
        assert!(
            names.contains(&expected),
            "missing span {expected}: {names:?}"
        );
    }
    // Spans are recorded in open order with monotone start offsets, and a
    // closed span never extends past the next sibling's start + duration
    // accounting keeps wall-clock ordering sane.
    for w in report.spans.windows(2) {
        assert!(
            w[0].start_us <= w[1].start_us,
            "span starts must be monotone: {:?}",
            report.spans
        );
    }
    let pta = report.spans.iter().find(|s| s.name == "pta.solve").unwrap();
    let rounds = pta
        .counters
        .iter()
        .find(|(k, _)| k == "pta.delta_rounds")
        .map(|(_, v)| *v)
        .unwrap();
    assert!(rounds > 0, "the solver must pop work");
}

#[test]
fn nested_spans_record_depth() {
    let tel = Telemetry::enabled();
    {
        let _outer = tel.span("outer");
        std::thread::sleep(std::time::Duration::from_millis(1));
        {
            let _inner = tel.span("inner");
        }
    }
    let report = tel.report();
    let outer = report.spans.iter().find(|s| s.name == "outer").unwrap();
    let inner = report.spans.iter().find(|s| s.name == "inner").unwrap();
    assert_eq!(outer.depth, 0);
    assert_eq!(inner.depth, 1);
    assert!(inner.start_us >= outer.start_us);
    assert!(
        outer.dur_us >= inner.dur_us,
        "enclosing span lasts at least as long as its child: outer={} inner={}",
        outer.dur_us,
        inner.dur_us
    );
}

#[test]
fn counters_aggregate_across_batch_workers() {
    let a = setup();
    let queries = print_queries(&a);
    assert!(queries.len() >= 2);
    // Tile the queries so several workers record concurrently.
    let tiled: Vec<Vec<NodeId>> = queries.iter().cycle().take(20).cloned().collect();

    let tel = Telemetry::enabled();
    let slices = batch::slices_telemetry(&a.csr, &tiled, SliceKind::Thin, 4, &tel);
    let report = tel.report();

    // One latency sample per query, whatever the thread interleaving.
    let h = report.histograms.get("batch.query_us").unwrap();
    assert_eq!(h.count as usize, tiled.len());
    assert!(h.p50 <= h.p95 && h.p95 <= h.max);

    // The shared counter is the exact sum of per-slice node counts.
    let expected: u64 = slices.iter().map(|s| s.nodes.len() as u64).sum();
    assert_eq!(report.counters.get("slice.nodes_visited"), Some(&expected));
    assert!(
        report.counters.get("slice.csr_edges_visited").copied() > Some(0),
        "the BFS visits edges: {:?}",
        report.counters
    );
}

#[test]
fn cs_batch_records_memo_hits_and_misses() {
    let a = setup();
    let queries = print_queries(&a);
    // Repeats of the same queries: later queries splice memoised exit
    // regions, so both hits and misses must show up.
    let tiled: Vec<Vec<NodeId>> = queries
        .iter()
        .cycle()
        .take(3 * queries.len())
        .cloned()
        .collect();
    let tel = Telemetry::enabled();
    let _ = batch::cs_slices_telemetry(&a.csr, &tiled, SliceKind::Thin, 1, &tel);
    let report = tel.report();
    let misses = report
        .counters
        .get("cs.exit_memo_misses")
        .copied()
        .unwrap_or(0);
    let hits = report
        .counters
        .get("cs.exit_memo_hits")
        .copied()
        .unwrap_or(0);
    assert!(
        misses > 0,
        "first encounters must miss: {:?}",
        report.counters
    );
    assert!(
        hits > 0,
        "repeats must hit the exit memo: {:?}",
        report.counters
    );
}

#[test]
fn run_report_round_trips_through_json() {
    let a = setup();
    let queries = print_queries(&a);
    let tel = Telemetry::enabled();
    let _ = batch::slices_telemetry(&a.csr, &queries, SliceKind::Thin, 2, &tel);
    tel.event("test.marker", &[("key", "value \"quoted\"\n".to_string())]);
    let report = tel.report();

    let json = report.to_json();
    assert!(json.contains(RUN_REPORT_SCHEMA));
    let parsed = RunReport::from_json(&json).expect("emitted JSON must parse");
    assert_eq!(parsed, report, "round-trip must be lossless");
}

#[test]
fn governance_records_budget_exhaustion_with_frontier() {
    let a = setup();
    let queries = print_queries(&a);
    let tel = Telemetry::enabled();
    let cfg = BatchConfig {
        budget: Budget::unlimited().with_step_limit(1),
        telemetry: tel.clone(),
        ..BatchConfig::default()
    };
    let outcomes = batch::governed_slices(&a.csr, &queries, SliceKind::Thin, 2, &cfg);
    let truncated = outcomes
        .iter()
        .filter(|o| matches!(&o.slice, Ok(s) if !s.completeness.is_complete()))
        .count();
    assert!(truncated > 0, "a 1-step budget must truncate something");

    let report = tel.report();
    assert_eq!(
        report.counters.get("govern.budget_exhaustions"),
        Some(&(truncated as u64))
    );
    let events: Vec<_> = report
        .events
        .iter()
        .filter(|e| e.name == "govern.budget_exhausted")
        .collect();
    assert_eq!(events.len(), truncated);
    for e in &events {
        assert_eq!(e.field("stage"), Some("slice"));
        assert!(e.field("reason").is_some());
        let frontier: u64 = e
            .field("frontier")
            .expect("event carries the abandoned-frontier size")
            .parse()
            .expect("frontier is a count");
        assert!(frontier > 0, "abandoned work must be reported");
    }
    // Meter checks were counted for every attempted query.
    assert!(report.counters.get("govern.meter_checks").copied() >= Some(1));
    // The per-query latency histogram covers every query.
    let h = report.histograms.get("batch.query_us").unwrap();
    assert_eq!(h.count as usize, queries.len());
}

#[test]
fn disabled_telemetry_changes_nothing() {
    let a = setup();
    let queries = print_queries(&a);
    let disabled = Telemetry::disabled();
    assert!(!disabled.is_enabled());

    let plain = batch::slices(&a.csr, &queries, SliceKind::Thin, 2);
    let with_disabled = batch::slices_telemetry(&a.csr, &queries, SliceKind::Thin, 2, &disabled);
    let with_enabled =
        batch::slices_telemetry(&a.csr, &queries, SliceKind::Thin, 2, &Telemetry::enabled());
    for ((p, d), e) in plain.iter().zip(&with_disabled).zip(&with_enabled) {
        assert_eq!(p.stmts_in_bfs_order, d.stmts_in_bfs_order);
        assert_eq!(p.stmts_in_bfs_order, e.stmts_in_bfs_order);
        assert_eq!(p.nodes, d.nodes);
        assert_eq!(p.nodes, e.nodes);
    }

    // A disabled handle records nothing — its report is empty.
    let report = disabled.report();
    assert!(report.spans.is_empty());
    assert!(report.counters.is_empty());
    assert!(report.histograms.is_empty());
    assert!(report.events.is_empty());
}
